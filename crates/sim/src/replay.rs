//! Scenario replay: a typed event timeline driven against a warm-started
//! DiBA (`dpc replay`).
//!
//! Everything else in the workspace solves one static instance; this module
//! tests the paper's *real* claim — fast **re**-allocation when conditions
//! change. A [`Scenario`] is a cluster description plus a time-ordered list
//! of [`ScenarioEvent`]s (budget moves, VM churn re-fitting a server's
//! quadratic, workload phase changes, maintenance drains). The
//! [`replay`] driver applies each event group to a *running* [`DibaRun`]
//! through its warm-start entry points — power and residual state carry
//! over, `Σe = Σp − P` is preserved by construction through every mutation
//! — measures the rounds to re-converge, and (optionally) measures a cold
//! start on the identical mutated instance for comparison.
//!
//! # Scenario file format
//!
//! Line-oriented text; `#` starts a comment, blank lines are ignored.
//! Header lines come first, then `at` lines in non-decreasing time order:
//!
//! ```text
//! # 8-node budget-ramp example
//! servers 8
//! seed 7
//! topology ring
//! budget 1400
//!
//! at 1.0 budget 1360
//! at 2.0 vm-arrive node 3 share 0.4 mem 0.2
//! at 3.0 phase node 5 mem 0.9
//! at 4.0 vm-depart node 3
//! at 5.0 drain node 2
//! at 6.0 restore node 2
//! ```
//!
//! Events sharing one timestamp are applied atomically (one re-convergence
//! measurement). [`Scenario::parse`] rejects malformed input with typed
//! [`AlgError`]s naming the offending line — non-monotone times, non-finite
//! numbers, events addressing unknown nodes ([`AlgError::UnknownNode`]),
//! departures with no resident VM, double drains — never panics.

use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::problem::{AlgError, PowerBudgetProblem};
use dpc_alg::telemetry::{FaultEvent, FaultEventKind};
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use dpc_models::vm::{ServerLoad, VmSpec};
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use std::collections::BTreeMap;

/// One event of a scenario timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// The cluster budget changes to the given total (watts).
    SetBudget(Watts),
    /// A VM is placed on `node`, re-fitting its utility curve.
    VmArrive {
        /// Server the VM lands on.
        node: usize,
        /// The VM's share and workload shape.
        vm: VmSpec,
    },
    /// The most recently placed VM leaves `node` (LIFO).
    VmDepart {
        /// Server the VM leaves.
        node: usize,
    },
    /// `node`'s base workload enters a new phase with the given
    /// memory-boundedness.
    Phase {
        /// Server whose workload changed phase.
        node: usize,
        /// New memory-boundedness of the base workload, in `[0, 1]`.
        memory_boundedness: f64,
    },
    /// `node` is drained for maintenance: its curve is pinned to an idle
    /// box so the allocator migrates its power away.
    Drain {
        /// Server being drained.
        node: usize,
    },
    /// A drained `node` returns to service with its composed curve.
    Restore {
        /// Server returning to service.
        node: usize,
    },
}

impl ScenarioEvent {
    /// Stable one-line description used in reports.
    pub fn describe(&self) -> String {
        match self {
            ScenarioEvent::SetBudget(w) => format!("budget {:.1}", w.0),
            ScenarioEvent::VmArrive { node, vm } => format!(
                "vm-arrive node {node} share {:.2} mem {:.2}",
                vm.share, vm.memory_boundedness
            ),
            ScenarioEvent::VmDepart { node } => format!("vm-depart node {node}"),
            ScenarioEvent::Phase {
                node,
                memory_boundedness,
            } => format!("phase node {node} mem {memory_boundedness:.2}"),
            ScenarioEvent::Drain { node } => format!("drain node {node}"),
            ScenarioEvent::Restore { node } => format!("restore node {node}"),
        }
    }
}

/// An event with its scenario timestamp (seconds, ordering only — the
/// replay driver measures re-convergence in rounds, not wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Scenario time (non-negative, non-decreasing in file order).
    pub at: f64,
    /// The event.
    pub event: ScenarioEvent,
}

/// A parsed, validated scenario: cluster description plus timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Cluster size.
    pub servers: usize,
    /// Workload seed for [`ClusterBuilder`].
    pub seed: u64,
    /// Topology name: `ring`, `chords` or `grid` (the `dpc` CLI names).
    pub topology: String,
    /// Initial total budget (watts).
    pub budget: Watts,
    /// The timeline, in non-decreasing time order.
    pub events: Vec<TimedEvent>,
}

fn bad(line_no: usize, what: impl std::fmt::Display) -> AlgError {
    AlgError::InvalidConfig {
        what: format!("scenario line {line_no}: {what}"),
    }
}

fn parse_f64(tok: &str, line_no: usize, what: &str) -> Result<f64, AlgError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| bad(line_no, format!("{what} `{tok}` is not a number")))?;
    if !v.is_finite() {
        return Err(bad(line_no, format!("{what} `{tok}` must be finite")));
    }
    Ok(v)
}

fn parse_usize(tok: &str, line_no: usize, what: &str) -> Result<usize, AlgError> {
    tok.parse().map_err(|_| {
        bad(
            line_no,
            format!("{what} `{tok}` is not a non-negative integer"),
        )
    })
}

/// Expects `tokens[idx]` to be the literal keyword `key` and returns the
/// token after it.
fn keyed<'a>(
    tokens: &[&'a str],
    idx: usize,
    key: &str,
    line_no: usize,
) -> Result<&'a str, AlgError> {
    match (tokens.get(idx), tokens.get(idx + 1)) {
        (Some(&k), Some(&v)) if k == key => Ok(v),
        _ => Err(bad(
            line_no,
            format!("expected `{key} <value>` at position {idx}"),
        )),
    }
}

impl Scenario {
    /// Parses and validates the scenario text format.
    ///
    /// # Errors
    ///
    /// [`AlgError::InvalidConfig`] naming the offending line for syntax
    /// errors, non-finite or out-of-range numbers, non-monotone event
    /// times, VM departures with no resident VM, and drain/restore
    /// mismatches; [`AlgError::UnknownNode`] for events addressing a node
    /// the cluster does not have.
    pub fn parse(text: &str) -> Result<Scenario, AlgError> {
        let mut servers: Option<usize> = None;
        let mut seed: u64 = 0;
        let mut topology = String::from("ring");
        let mut budget: Option<f64> = None;
        let mut events: Vec<TimedEvent> = Vec::new();
        let mut last_at: Option<f64> = None;
        // Static semantic state for depart/drain validation.
        let mut resident: BTreeMap<usize, usize> = BTreeMap::new();
        let mut drained: BTreeMap<usize, bool> = BTreeMap::new();

        for (k, raw) in text.lines().enumerate() {
            let line_no = k + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens[0] {
                "servers" => {
                    let v = keyed(&tokens, 0, "servers", line_no)?;
                    let n = parse_usize(v, line_no, "servers")?;
                    if n < 2 {
                        return Err(bad(line_no, format!("servers {n} must be at least 2")));
                    }
                    servers = Some(n);
                }
                "seed" => {
                    let v = keyed(&tokens, 0, "seed", line_no)?;
                    seed = v
                        .parse()
                        .map_err(|_| bad(line_no, format!("seed `{v}` is not a u64")))?;
                }
                "topology" => {
                    let v = keyed(&tokens, 0, "topology", line_no)?;
                    if !matches!(v, "ring" | "chords" | "grid") {
                        return Err(bad(
                            line_no,
                            format!("unknown topology `{v}` (ring | chords | grid)"),
                        ));
                    }
                    topology = v.to_string();
                }
                "budget" => {
                    let v = keyed(&tokens, 0, "budget", line_no)?;
                    let w = parse_f64(v, line_no, "budget")?;
                    if w <= 0.0 {
                        return Err(bad(line_no, format!("budget {w} must be positive")));
                    }
                    budget = Some(w);
                }
                "at" => {
                    let n =
                        servers.ok_or_else(|| bad(line_no, "`servers` must come before events"))?;
                    let at = parse_f64(
                        tokens
                            .get(1)
                            .ok_or_else(|| bad(line_no, "`at` needs a time"))?,
                        line_no,
                        "event time",
                    )?;
                    if at < 0.0 {
                        return Err(bad(line_no, format!("event time {at} must be >= 0")));
                    }
                    if let Some(prev) = last_at {
                        if at < prev {
                            return Err(bad(
                                line_no,
                                format!("event time {at} goes back in time (previous {prev})"),
                            ));
                        }
                    }
                    last_at = Some(at);
                    let node_for = |idx: usize| -> Result<usize, AlgError> {
                        let v = keyed(&tokens, idx, "node", line_no)?;
                        let node = parse_usize(v, line_no, "node")?;
                        if node >= n {
                            return Err(AlgError::UnknownNode { node, nodes: n });
                        }
                        Ok(node)
                    };
                    let kind = tokens
                        .get(2)
                        .ok_or_else(|| bad(line_no, "`at <t>` needs an event"))?;
                    let event = match *kind {
                        "budget" => {
                            let v = tokens
                                .get(3)
                                .ok_or_else(|| bad(line_no, "`budget` needs a value"))?;
                            let w = parse_f64(v, line_no, "budget")?;
                            if w <= 0.0 {
                                return Err(bad(line_no, format!("budget {w} must be positive")));
                            }
                            ScenarioEvent::SetBudget(Watts(w))
                        }
                        "vm-arrive" => {
                            let node = node_for(3)?;
                            let share =
                                parse_f64(keyed(&tokens, 5, "share", line_no)?, line_no, "share")?;
                            let mem =
                                parse_f64(keyed(&tokens, 7, "mem", line_no)?, line_no, "mem")?;
                            let vm = VmSpec {
                                share,
                                memory_boundedness: mem,
                            };
                            if !vm.is_valid() {
                                return Err(bad(
                                    line_no,
                                    format!(
                                        "vm share {share} must be in (0,1] and mem {mem} in [0,1]"
                                    ),
                                ));
                            }
                            *resident.entry(node).or_insert(0) += 1;
                            ScenarioEvent::VmArrive { node, vm }
                        }
                        "vm-depart" => {
                            let node = node_for(3)?;
                            let count = resident.entry(node).or_insert(0);
                            if *count == 0 {
                                return Err(bad(
                                    line_no,
                                    format!("vm-depart: node {node} has no resident VM"),
                                ));
                            }
                            *count -= 1;
                            ScenarioEvent::VmDepart { node }
                        }
                        "phase" => {
                            let node = node_for(3)?;
                            let mem =
                                parse_f64(keyed(&tokens, 5, "mem", line_no)?, line_no, "mem")?;
                            if !(0.0..=1.0).contains(&mem) {
                                return Err(bad(
                                    line_no,
                                    format!("phase mem {mem} must be in [0,1]"),
                                ));
                            }
                            ScenarioEvent::Phase {
                                node,
                                memory_boundedness: mem,
                            }
                        }
                        "drain" => {
                            let node = node_for(3)?;
                            let d = drained.entry(node).or_insert(false);
                            if *d {
                                return Err(bad(
                                    line_no,
                                    format!("drain: node {node} is already drained"),
                                ));
                            }
                            *d = true;
                            ScenarioEvent::Drain { node }
                        }
                        "restore" => {
                            let node = node_for(3)?;
                            let d = drained.entry(node).or_insert(false);
                            if !*d {
                                return Err(bad(
                                    line_no,
                                    format!("restore: node {node} is not drained"),
                                ));
                            }
                            *d = false;
                            ScenarioEvent::Restore { node }
                        }
                        other => {
                            return Err(bad(line_no, format!("unknown event `{other}`")));
                        }
                    };
                    events.push(TimedEvent { at, event });
                }
                other => {
                    return Err(bad(line_no, format!("unknown directive `{other}`")));
                }
            }
        }

        let servers = servers.ok_or_else(|| bad(0, "missing `servers` header"))?;
        let budget = budget.ok_or_else(|| bad(0, "missing `budget` header"))?;
        Ok(Scenario {
            servers,
            seed,
            topology,
            budget: Watts(budget),
            events,
        })
    }

    /// Builds the communication graph the scenario names (the same
    /// topology vocabulary as the `dpc` CLI).
    ///
    /// # Errors
    ///
    /// [`AlgError::InvalidConfig`] when `grid` is requested for a
    /// non-rectangular cluster size.
    pub fn graph(&self) -> Result<Graph, AlgError> {
        let n = self.servers;
        match self.topology.as_str() {
            "chords" => Ok(Graph::ring_with_chords(n, (n / 8).max(2))),
            "grid" => {
                let side = (n as f64).sqrt().floor() as usize;
                if side < 1 || side * (n / side) != n {
                    return Err(AlgError::InvalidConfig {
                        what: format!("topology grid needs a rectangular server count, got {n}"),
                    });
                }
                Ok(Graph::grid(side, n / side))
            }
            _ => Ok(Graph::ring(n)),
        }
    }

    /// The scenario's initial problem: `servers` workloads drawn with
    /// `seed`, capped at `budget`.
    ///
    /// # Errors
    ///
    /// [`AlgError::InfeasibleBudget`] when the budget cannot cover the
    /// cluster's idle power.
    pub fn initial_problem(&self) -> Result<PowerBudgetProblem, AlgError> {
        let cluster = ClusterBuilder::new(self.servers).seed(self.seed).build();
        PowerBudgetProblem::new(cluster.utilities(), self.budget)
    }
}

/// The oracle-free convergence criterion of the replay driver: rest is
/// declared when the largest per-node power move stays below `tol_watts`
/// for `stable_rounds` consecutive rounds (see [`DibaRun::run_to_rest`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettleCriterion {
    /// Largest per-node move that still counts as rest (watts).
    pub tol_watts: f64,
    /// Consecutive quiet rounds required.
    pub stable_rounds: usize,
    /// Give-up bound per settle.
    pub max_rounds: usize,
}

impl Default for SettleCriterion {
    fn default() -> Self {
        SettleCriterion {
            tol_watts: 1e-2,
            stable_rounds: 10,
            max_rounds: 200_000,
        }
    }
}

impl SettleCriterion {
    /// Checks the criterion is meaningful.
    ///
    /// # Errors
    ///
    /// [`AlgError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), AlgError> {
        if !self.tol_watts.is_finite() || self.tol_watts <= 0.0 {
            return Err(AlgError::InvalidConfig {
                what: format!(
                    "settle tol_watts = {} must be finite and positive",
                    self.tol_watts
                ),
            });
        }
        if self.stable_rounds == 0 || self.max_rounds == 0 {
            return Err(AlgError::InvalidConfig {
                what: "settle stable_rounds and max_rounds must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Configuration of the replay driver.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Solver configuration used by the warm run (and, minus telemetry,
    /// by each cold comparison run).
    pub diba: DibaConfig,
    /// The re-convergence criterion applied after every event group.
    pub settle: SettleCriterion,
    /// Whether each event group also measures a cold start on the mutated
    /// instance (the headline warm-vs-cold comparison; costs one extra
    /// solve per group).
    pub compare_cold: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            diba: DibaConfig::default(),
            settle: SettleCriterion::default(),
            compare_cold: true,
        }
    }
}

/// Outcome of one event group (all events sharing a timestamp).
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// The group's scenario time.
    pub at: f64,
    /// One description per event, in file order.
    pub events: Vec<String>,
    /// Budget in effect after the group (watts).
    pub budget: f64,
    /// Rounds the warm run took to re-converge (`None`: hit `max_rounds`).
    pub warm_rounds: Option<usize>,
    /// Rounds a cold start took on the identical mutated instance
    /// (`None` when cold comparison is off or the cold run hit the bound).
    pub cold_rounds: Option<usize>,
    /// Total power after the warm re-settle (watts).
    pub total_power: f64,
    /// Conservation drift `|Σe − (Σp − P)|` after the group (watts).
    pub drift: f64,
    /// `Σp ≤ P` (within 1 µW) after the warm re-settle.
    pub feasible: bool,
}

/// The full deterministic replay report. Carries no wall-clock fields, so
/// rendering it is byte-identical across reruns — the contract the CI
/// replay smoke step checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Cluster size.
    pub servers: usize,
    /// Workload seed.
    pub seed: u64,
    /// Topology name.
    pub topology: String,
    /// Initial budget (watts).
    pub initial_budget: f64,
    /// Rounds of the initial (cold) settle.
    pub initial_rounds: Option<usize>,
    /// The settle criterion applied throughout.
    pub settle: SettleCriterion,
    /// Per-event-group outcomes, in time order.
    pub events: Vec<EventOutcome>,
}

fn fmt_rounds(r: Option<usize>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "null".to_string(),
    }
}

impl ReplayReport {
    /// `true` when every event group re-settled within the round bound
    /// with a clean ledger and a feasible allocation.
    pub fn all_settled(&self) -> bool {
        self.initial_rounds.is_some()
            && self
                .events
                .iter()
                .all(|e| e.warm_rounds.is_some() && e.feasible && e.drift < 1e-6)
    }

    /// Renders the report as pretty-printed JSON (hand-rolled — the
    /// workspace carries no serialization dependency). Deterministic: no
    /// timestamps or wall-clock fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"report\": \"replay\",\n");
        out.push_str(&format!("  \"servers\": {},\n", self.servers));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"topology\": \"{}\",\n", self.topology));
        out.push_str(&format!(
            "  \"initial_budget_w\": {:.3},\n",
            self.initial_budget
        ));
        out.push_str(&format!(
            "  \"initial_rounds\": {},\n",
            fmt_rounds(self.initial_rounds)
        ));
        out.push_str(&format!(
            "  \"settle\": {{\"tol_watts\": {:.4}, \"stable_rounds\": {}, \"max_rounds\": {}}},\n",
            self.settle.tol_watts, self.settle.stable_rounds, self.settle.max_rounds
        ));
        out.push_str(&format!("  \"all_settled\": {},\n", self.all_settled()));
        out.push_str("  \"events\": [\n");
        for (k, e) in self.events.iter().enumerate() {
            let descs: Vec<String> = e.events.iter().map(|d| format!("\"{d}\"")).collect();
            out.push_str(&format!(
                "    {{\"at\": {:.3}, \"events\": [{}], \"budget_w\": {:.3}, \
                 \"warm_rounds\": {}, \"cold_rounds\": {}, \"total_power_w\": {:.3}, \
                 \"drift_w\": {:.3e}, \"feasible\": {}}}{}\n",
                e.at,
                descs.join(", "),
                e.budget,
                fmt_rounds(e.warm_rounds),
                fmt_rounds(e.cold_rounds),
                e.total_power,
                e.drift,
                e.feasible,
                if k + 1 < self.events.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a fixed-width text table (one row per event group).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replay: {} servers, seed {}, topology {}, initial settle {} rounds\n",
            self.servers,
            self.seed,
            self.topology,
            fmt_rounds(self.initial_rounds)
        ));
        out.push_str(&format!(
            "{:>8}  {:>10}  {:>10}  {:>12}  {:>8}  events\n",
            "t", "warm", "cold", "power (W)", "feasible"
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{:>8.2}  {:>10}  {:>10}  {:>12.2}  {:>8}  {}\n",
                e.at,
                fmt_rounds(e.warm_rounds),
                fmt_rounds(e.cold_rounds),
                e.total_power,
                e.feasible,
                e.events.join("; "),
            ));
        }
        out
    }
}

/// A finished replay: the deterministic report plus the still-warm run
/// (for further inspection — final allocation, telemetry stream, …).
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The deterministic per-event report.
    pub report: ReplayReport,
    /// The warm run after the last event group settled.
    pub run: DibaRun,
}

/// The idle box a drained node is pinned to: a flat positive utility on
/// `[p_min, p_min + 1 W]`, so the barrier walks the node to its floor and
/// the allocator migrates the freed power to its neighbors.
fn drain_curve(u: &QuadraticUtility) -> QuadraticUtility {
    QuadraticUtility::new(0.05, 0.0, 0.0, u.p_min(), u.p_min() + Watts(1.0))
        .expect("flat positive curve on a non-empty box is always valid")
}

/// Per-node dynamic state the driver tracks across events.
struct NodeDynamics {
    load: Option<ServerLoad>,
    drained: bool,
}

/// Replays a scenario against a warm-started DiBA and reports per-event
/// re-convergence, warm vs cold.
///
/// The driver settles the initial instance cold, then for each group of
/// events sharing a timestamp: applies the mutations through the warm-start
/// entry points ([`DibaRun::set_budget`], [`DibaRun::replace_utilities`] —
/// residual state carries over, `Σe = Σp − P` holds through every step),
/// runs to rest, and optionally solves the identical mutated instance from
/// a cold start for the comparison column. With telemetry enabled in
/// `config.diba`, every mutation leaves a `budget`/`workload` marker in the
/// event stream and each re-settle is recorded as a round range.
///
/// # Errors
///
/// Propagates [`AlgError`] from scenario validation ([`Scenario::graph`]),
/// problem construction (e.g. an infeasible initial budget), solver
/// configuration, and events whose budget cannot cover idle power.
pub fn replay(scenario: &Scenario, config: &ReplayConfig) -> Result<ReplayOutcome, AlgError> {
    config.diba.validate()?;
    config.settle.validate()?;
    let graph = scenario.graph()?;
    let problem = scenario.initial_problem()?;
    let mut run = DibaRun::new(problem, graph.clone(), config.diba)?;
    let s = config.settle;
    let initial_rounds = run.run_to_rest(s.tol_watts, s.stable_rounds, s.max_rounds);

    let mut nodes: Vec<NodeDynamics> = (0..scenario.servers)
        .map(|_| NodeDynamics {
            load: None,
            drained: false,
        })
        .collect();
    let mut outcomes: Vec<EventOutcome> = Vec::new();
    let mut idx = 0;
    while idx < scenario.events.len() {
        // One group: every event sharing this timestamp.
        let at = scenario.events[idx].at;
        let mut end = idx;
        while end < scenario.events.len() && scenario.events[end].at == at {
            end += 1;
        }
        let group = &scenario.events[idx..end];
        idx = end;

        // Apply: budget moves directly, curve mutations batched into one
        // conservation-preserving `replace_utilities` call (last write per
        // node wins, matching file order).
        let mut curve_changes: BTreeMap<usize, QuadraticUtility> = BTreeMap::new();
        let mut descriptions = Vec::with_capacity(group.len());
        for te in group {
            descriptions.push(te.event.describe());
            match &te.event {
                ScenarioEvent::SetBudget(w) => {
                    run.set_budget(*w)?;
                }
                ScenarioEvent::VmArrive { node, vm } => {
                    let nd = &mut nodes[*node];
                    let load = nd.load.get_or_insert_with(|| {
                        ServerLoad::from_fitted(run.problem().utility(*node))
                    });
                    load.vm_arrive(*vm);
                    if !nd.drained {
                        curve_changes.insert(*node, load.fitted());
                    }
                }
                ScenarioEvent::VmDepart { node } => {
                    let nd = &mut nodes[*node];
                    let load = nd.load.get_or_insert_with(|| {
                        ServerLoad::from_fitted(run.problem().utility(*node))
                    });
                    load.vm_depart();
                    if !nd.drained {
                        curve_changes.insert(*node, load.fitted());
                    }
                }
                ScenarioEvent::Phase {
                    node,
                    memory_boundedness,
                } => {
                    let nd = &mut nodes[*node];
                    let load = nd.load.get_or_insert_with(|| {
                        ServerLoad::from_fitted(run.problem().utility(*node))
                    });
                    load.set_phase(*memory_boundedness);
                    if !nd.drained {
                        curve_changes.insert(*node, load.fitted());
                    }
                }
                ScenarioEvent::Drain { node } => {
                    let nd = &mut nodes[*node];
                    if nd.load.is_none() {
                        nd.load = Some(ServerLoad::from_fitted(run.problem().utility(*node)));
                    }
                    nd.drained = true;
                    curve_changes.insert(*node, drain_curve(run.problem().utility(*node)));
                }
                ScenarioEvent::Restore { node } => {
                    let nd = &mut nodes[*node];
                    nd.drained = false;
                    let load = nd.load.as_ref().expect("drain created the load");
                    curve_changes.insert(*node, load.fitted());
                }
            }
        }
        if !curve_changes.is_empty() {
            let changes: Vec<(usize, QuadraticUtility)> =
                curve_changes.iter().map(|(&i, &u)| (i, u)).collect();
            run.replace_utilities(&changes)?;
        }

        // Measure the warm re-convergence.
        let warm_rounds = run.run_to_rest(s.tol_watts, s.stable_rounds, s.max_rounds);
        if let Some(r) = warm_rounds {
            run.record_event(FaultEvent {
                round: run.iterations() as u64,
                node: 0,
                kind: FaultEventKind::Reconverged,
                mass: r as f64,
            });
        }

        // Cold comparison on the identical mutated instance.
        let cold_rounds = if config.compare_cold {
            let cold_config = DibaConfig {
                telemetry: dpc_alg::telemetry::TelemetryConfig::off(),
                ..config.diba
            };
            let mut cold = DibaRun::new(run.problem().clone(), graph.clone(), cold_config)?;
            cold.run_to_rest(s.tol_watts, s.stable_rounds, s.max_rounds)
        } else {
            None
        };

        let total_power = run.total_power();
        outcomes.push(EventOutcome {
            at,
            events: descriptions,
            budget: run.problem().budget().0,
            warm_rounds,
            cold_rounds,
            total_power: total_power.0,
            drift: run.invariant_drift(),
            feasible: total_power <= run.problem().budget() + Watts(1e-6),
        });
    }

    Ok(ReplayOutcome {
        report: ReplayReport {
            servers: scenario.servers,
            seed: scenario.seed,
            topology: scenario.topology.clone(),
            initial_budget: scenario.budget.0,
            initial_rounds,
            settle: s,
            events: outcomes,
        },
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# doc-test scenario
servers 8
seed 7
topology ring
budget 1400

at 1.0 budget 1360
at 2.0 vm-arrive node 3 share 0.4 mem 0.2
at 3.0 phase node 5 mem 0.9
at 4.0 vm-depart node 3
at 5.0 drain node 2
at 6.0 restore node 2
";

    #[test]
    fn parses_the_example() {
        let s = Scenario::parse(EXAMPLE).unwrap();
        assert_eq!(s.servers, 8);
        assert_eq!(s.seed, 7);
        assert_eq!(s.topology, "ring");
        assert_eq!(s.budget, Watts(1400.0));
        assert_eq!(s.events.len(), 6);
        assert_eq!(s.events[0].event, ScenarioEvent::SetBudget(Watts(1360.0)));
        assert!(matches!(
            s.events[4].event,
            ScenarioEvent::Drain { node: 2 }
        ));
    }

    #[test]
    fn rejects_malformed_scenarios_with_named_lines() {
        let cases: [(&str, &str); 8] = [
            (
                "servers 8\nbudget 100\nat 2 budget 90\nat 1 budget 95\n",
                "back in time",
            ),
            ("servers 8\nbudget 100\nat nope budget 90\n", "not a number"),
            ("servers 8\nbudget 100\nat 1 budget inf\n", "must be finite"),
            (
                "servers 8\nbudget 100\nat 1 vm-depart node 3\n",
                "no resident VM",
            ),
            (
                "servers 8\nbudget 100\nat 1 restore node 3\n",
                "not drained",
            ),
            (
                "servers 8\nbudget 100\nat 1 drain node 3\nat 2 drain node 3\n",
                "already drained",
            ),
            (
                "servers 8\nbudget 100\nat 1 explode node 3\n",
                "unknown event",
            ),
            ("servers 1\nbudget 100\n", "at least 2"),
        ];
        for (text, needle) in cases {
            let err = Scenario::parse(text).unwrap_err();
            assert!(
                matches!(err, AlgError::InvalidConfig { .. }),
                "{text:?}: {err:?}"
            );
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn unknown_node_is_the_named_variant() {
        let err =
            Scenario::parse("servers 8\nbudget 100\nat 1 phase node 12 mem 0.5\n").unwrap_err();
        assert!(
            matches!(err, AlgError::UnknownNode { node: 12, nodes: 8 }),
            "{err:?}"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = Scenario::parse("servers 4 # four\n\n# nothing\nbudget 700\n").unwrap();
        assert_eq!(s.servers, 4);
        assert!(s.events.is_empty());
    }

    #[test]
    fn replays_the_example_feasibly() {
        let s = Scenario::parse(EXAMPLE).unwrap();
        let out = replay(&s, &ReplayConfig::default()).unwrap();
        assert!(out.report.all_settled(), "{}", out.report.to_table());
        assert_eq!(out.report.events.len(), 6);
        for e in &out.report.events {
            assert!(e.feasible, "{e:?}");
            assert!(e.drift < 1e-6, "{e:?}");
        }
        // The drain group migrates node 2's power away: its allocation
        // afterwards sits at the idle floor.
        let drained = &out.report.events[4];
        assert!(drained.events[0].contains("drain node 2"));
        assert!(out.run.invariant_drift() < 1e-6);
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let s = Scenario::parse(EXAMPLE).unwrap();
        let a = replay(&s, &ReplayConfig::default()).unwrap();
        let b = replay(&s, &ReplayConfig::default()).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.report.to_table(), b.report.to_table());
        assert!(a.report.to_json().contains("\"warm_rounds\""));
    }
}
