//! Piecewise-constant budget schedules.
//!
//! The dynamic experiments drive the cluster with a budget that changes at
//! known instants: every minute for Fig. 4.4 (demand-response style), one
//! step for Figs. 4.5/4.6, and at 15 s / 45 s for Fig. 3.14.

use dpc_models::units::{Seconds, Watts};

/// A piecewise-constant function of time.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSchedule {
    /// `(start_time, budget)` segments, ascending by start time; the first
    /// segment must start at 0.
    segments: Vec<(Seconds, Watts)>,
}

impl BudgetSchedule {
    /// A constant budget.
    pub fn constant(budget: Watts) -> BudgetSchedule {
        BudgetSchedule {
            segments: vec![(Seconds::ZERO, budget)],
        }
    }

    /// Builds from `(start, budget)` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, does not start at `t = 0`, or is not
    /// strictly ascending in time.
    pub fn steps(segments: Vec<(Seconds, Watts)>) -> BudgetSchedule {
        assert!(
            !segments.is_empty(),
            "schedule must have at least one segment"
        );
        assert_eq!(
            segments[0].0,
            Seconds::ZERO,
            "first segment must start at t = 0"
        );
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "segment starts must ascend");
        }
        BudgetSchedule { segments }
    }

    /// A single step: `before` until `at`, then `after`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly positive.
    pub fn step(before: Watts, after: Watts, at: Seconds) -> BudgetSchedule {
        assert!(at > Seconds::ZERO, "step time must be positive");
        BudgetSchedule::steps(vec![(Seconds::ZERO, before), (at, after)])
    }

    /// The budget in force at time `t` (clamped to the first segment for
    /// negative times).
    pub fn budget_at(&self, t: Seconds) -> Watts {
        let mut current = self.segments[0].1;
        for &(start, b) in &self.segments {
            if t >= start {
                current = b;
            } else {
                break;
            }
        }
        current
    }

    /// The segments of the schedule.
    pub fn segments(&self) -> &[(Seconds, Watts)] {
        &self.segments
    }

    /// Whether the budget changes in the half-open interval `(from, to]` —
    /// the engine's re-allocation trigger.
    pub fn changes_within(&self, from: Seconds, to: Seconds) -> bool {
        self.budget_at(from) != self.budget_at(to)
            || self
                .segments
                .iter()
                .any(|&(start, _)| start > from && start <= to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = BudgetSchedule::constant(Watts(100.0));
        assert_eq!(s.budget_at(Seconds(0.0)), Watts(100.0));
        assert_eq!(s.budget_at(Seconds(1e6)), Watts(100.0));
        assert!(!s.changes_within(Seconds(0.0), Seconds(1e6)));
    }

    #[test]
    fn steps_select_the_right_segment() {
        let s = BudgetSchedule::steps(vec![
            (Seconds(0.0), Watts(190.0)),
            (Seconds(60.0), Watts(170.0)),
            (Seconds(120.0), Watts(185.0)),
        ]);
        assert_eq!(s.budget_at(Seconds(59.9)), Watts(190.0));
        assert_eq!(s.budget_at(Seconds(60.0)), Watts(170.0));
        assert_eq!(s.budget_at(Seconds(300.0)), Watts(185.0));
        assert!(s.changes_within(Seconds(59.0), Seconds(60.0)));
        assert!(!s.changes_within(Seconds(60.0), Seconds(119.0)));
    }

    #[test]
    fn single_step_constructor() {
        let s = BudgetSchedule::step(Watts(190.0), Watts(170.0), Seconds(10.0));
        assert_eq!(s.budget_at(Seconds(9.999)), Watts(190.0));
        assert_eq!(s.budget_at(Seconds(10.0)), Watts(170.0));
    }

    #[test]
    #[should_panic(expected = "must start at t = 0")]
    fn rejects_late_start() {
        let _ = BudgetSchedule::steps(vec![(Seconds(5.0), Watts(1.0))]);
    }

    #[test]
    #[should_panic(expected = "starts must ascend")]
    fn rejects_unsorted() {
        let _ = BudgetSchedule::steps(vec![
            (Seconds(0.0), Watts(1.0)),
            (Seconds(5.0), Watts(2.0)),
            (Seconds(5.0), Watts(3.0)),
        ]);
    }
}
