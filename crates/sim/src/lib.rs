//! # dpc-sim — dynamic cluster simulation
//!
//! Drives a budgeter through time: scheduled budget changes
//! (demand-response), workload churn, and fine-grained step responses —
//! the machinery behind the paper's dynamic experiments (Figs. 4.4–4.7)
//! and the Chapter 3 runtime traces (Figs. 3.14/3.15).
//!
//! ```
//! use dpc_sim::{budgeter::DibaBudgeter, engine::{DynamicSim, SimConfig},
//!               schedule::BudgetSchedule};
//! use dpc_alg::{diba::DibaConfig, problem::PowerBudgetProblem};
//! use dpc_models::{units::{Seconds, Watts}, workload::ClusterBuilder};
//! use dpc_topology::Graph;
//!
//! # fn main() -> Result<(), dpc_alg::problem::AlgError> {
//! let cluster = ClusterBuilder::new(20).seed(1).build();
//! let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(3_400.0))?;
//! let budgeter = DibaBudgeter::new(problem, Graph::ring(20), DibaConfig::default())?;
//! let schedule = BudgetSchedule::constant(Watts(3_400.0));
//! let mut sim = DynamicSim::new(cluster, budgeter, schedule, SimConfig::new(Seconds(5.0)));
//! let series = sim.run()?;
//! assert!(series.budget_respected(Watts(1e-6)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod budgeter;
pub mod enforcement;
pub mod engine;
pub mod replay;
pub mod schedule;
pub mod series;
pub mod step;

pub use budgeter::{
    AsyncDibaBudgeter, Budgeter, DibaBudgeter, OracleBudgeter, PrimalDualBudgeter, UniformBudgeter,
};
pub use enforcement::EnforcedCluster;
pub use engine::{DynamicSim, SimConfig, SimFaults};
pub use replay::{
    replay, ReplayConfig, ReplayOutcome, ReplayReport, Scenario, ScenarioEvent, SettleCriterion,
};
pub use schedule::BudgetSchedule;
pub use series::{TimePoint, TimeSeries};
