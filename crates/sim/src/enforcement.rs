//! Cap enforcement: closing the loop between the *allocator* (which decides
//! caps) and the *actuator* (the per-server DVFS feedback controller of
//! Fig. 2.1 that realizes them).
//!
//! The allocation algorithms treat power as continuous; real servers
//! enforce caps by walking a discrete p-state ladder, settle with
//! first-order dynamics, and read noisy meters. This module quantifies the
//! enforcement gap: measured power is always at or below the cap after
//! settling (safety), but the p-state quantization leaves some allocated
//! power unused (a throughput cost the paper's controller design accepts).

use dpc_alg::problem::Allocation;
use dpc_models::capping::CappedServer;
use dpc_models::power::ServerSpec;
use dpc_models::units::Watts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A cluster of DVFS actuators enforcing per-server caps.
#[derive(Debug, Clone)]
pub struct EnforcedCluster {
    servers: Vec<CappedServer>,
    noise: Watts,
    rng: StdRng,
}

impl EnforcedCluster {
    /// Builds the actuator bank with the given caps applied; meters carry
    /// uniform noise of amplitude `noise`.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty or `noise` negative.
    pub fn new(spec: &ServerSpec, caps: &Allocation, noise: Watts, seed: u64) -> EnforcedCluster {
        assert!(!caps.is_empty(), "need at least one server");
        assert!(noise >= Watts::ZERO, "noise must be non-negative");
        let servers = caps
            .powers()
            .iter()
            .map(|&cap| CappedServer::new(spec.clone(), cap))
            .collect();
        EnforcedCluster {
            servers,
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the bank has no servers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Re-applies a new cap vector (a budgeter re-allocation).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn apply(&mut self, caps: &Allocation) {
        assert_eq!(caps.len(), self.servers.len(), "cap vector length mismatch");
        for (server, &cap) in self.servers.iter_mut().zip(caps.powers()) {
            server.set_cap(cap);
        }
    }

    /// Advances every controller one period; returns total measured power.
    pub fn tick(&mut self) -> Watts {
        let mut total = Watts::ZERO;
        for server in &mut self.servers {
            let n = if self.noise > Watts::ZERO {
                Watts(self.rng.gen_range(-self.noise.0..=self.noise.0))
            } else {
                Watts::ZERO
            };
            total += server.tick(n);
        }
        total
    }

    /// Runs `ticks` periods and returns the final total measured power.
    pub fn run(&mut self, ticks: usize) -> Watts {
        let mut last = self.measured_total();
        for _ in 0..ticks {
            last = self.tick();
        }
        last
    }

    /// Current total measured power.
    pub fn measured_total(&self) -> Watts {
        self.servers.iter().map(|s| s.measured_power()).sum()
    }

    /// Per-server measured power.
    pub fn measured(&self) -> Vec<Watts> {
        self.servers.iter().map(|s| s.measured_power()).collect()
    }

    /// Per-server enforcement gap `cap − measured` (positive after
    /// settling: the p-state ladder quantizes below the cap).
    pub fn enforcement_gaps(&self) -> Vec<Watts> {
        self.servers
            .iter()
            .map(|s| s.cap() - s.measured_power())
            .collect()
    }

    /// Fraction of servers currently measuring at or below their caps.
    pub fn compliance(&self) -> f64 {
        self.compliance_within(Watts::ZERO)
    }

    /// Fraction of servers measuring at or below cap + `tol` — use a
    /// tolerance of about twice the meter-noise amplitude for a fair
    /// instantaneous reading (noise feeds the first-order filter with
    /// gain 2).
    pub fn compliance_within(&self, tol: Watts) -> f64 {
        let ok = self
            .servers
            .iter()
            .filter(|s| s.measured_power() <= s.cap() + tol)
            .count();
        ok as f64 / self.servers.len() as f64
    }

    /// Ticks until total measured power first reaches `target` or below;
    /// `None` if not within `max_ticks`.
    pub fn ticks_to_total(&mut self, target: Watts, max_ticks: usize) -> Option<usize> {
        for t in 0..max_ticks {
            if self.tick() <= target {
                return Some(t + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_alg::problem::PowerBudgetProblem;
    use dpc_alg::{baselines, centralized};
    use dpc_models::workload::ClusterBuilder;

    fn setup(n: usize, per_server: f64) -> (PowerBudgetProblem, ServerSpec, Allocation) {
        let c = ClusterBuilder::new(n).seed(4).build();
        let p = PowerBudgetProblem::new(c.utilities(), Watts(per_server * n as f64)).unwrap();
        let alloc = centralized::solve(&p).allocation;
        (p, c.server().clone(), alloc)
    }

    #[test]
    fn settled_cluster_complies_with_every_cap() {
        let (_, spec, alloc) = setup(30, 168.0);
        let mut e = EnforcedCluster::new(&spec, &alloc, Watts::ZERO, 1);
        e.run(60);
        assert_eq!(e.compliance(), 1.0);
        // Quantization: measured sits below the continuous caps.
        assert!(e.measured_total() < alloc.total());
    }

    #[test]
    fn enforcement_gap_is_bounded_by_one_pstate_step() {
        let (_, spec, alloc) = setup(30, 168.0);
        let mut e = EnforcedCluster::new(&spec, &alloc, Watts::ZERO, 2);
        e.run(80);
        // Largest power gap between adjacent enforceable levels.
        let levels = spec.cap_levels();
        let max_step = levels
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(Watts::ZERO, Watts::max);
        for (gap, &cap) in e.enforcement_gaps().iter().zip(alloc.powers()) {
            // Caps below the lowest level cannot be met; skip those.
            if cap >= spec.min_full_power() {
                assert!(*gap <= max_step + Watts(1e-6), "gap {gap} at cap {cap}");
                assert!(*gap >= -Watts(1e-6));
            }
        }
    }

    #[test]
    fn budget_cut_reaches_the_meter_within_controller_periods() {
        let (p, spec, alloc) = setup(40, 180.0);
        let mut e = EnforcedCluster::new(&spec, &alloc, Watts::ZERO, 3);
        e.run(60);
        // Re-allocate to a tighter budget and re-apply.
        let tight = p.with_budget(p.budget() * 0.92).unwrap();
        let new_alloc = centralized::solve(&tight).allocation;
        e.apply(&new_alloc);
        let ticks = e
            .ticks_to_total(tight.budget(), 100)
            .expect("actuators must realize the cut");
        assert!(ticks < 30, "cut took {ticks} controller periods");
    }

    #[test]
    fn meter_noise_does_not_break_compliance_materially() {
        let (_, spec, alloc) = setup(30, 168.0);
        let noise = Watts(1.5);
        let mut e = EnforcedCluster::new(&spec, &alloc, noise, 4);
        e.run(120);
        // Any instantaneous reading stays within the accumulated meter
        // noise of its cap: per-tick noise feeds the first-order filter
        // with gain 1/(1−smoothing) = 2, so the stationary excursion is
        // bounded by twice the amplitude.
        for (m, &cap) in e.measured().iter().zip(alloc.powers()) {
            assert!(
                *m <= cap + noise * 2.0 + Watts(1e-6),
                "measured {m} cap {cap}"
            );
        }
        assert!(e.compliance() > 0.6, "compliance {}", e.compliance());
    }

    #[test]
    fn uniform_caps_enforce_uniformly() {
        let (p, spec, _) = setup(20, 170.0);
        let alloc = baselines::uniform(&p);
        let mut e = EnforcedCluster::new(&spec, &alloc, Watts::ZERO, 5);
        e.run(60);
        let m = e.measured();
        let first = m[0];
        assert!(m.iter().all(|&x| (x - first).abs() < Watts(1e-6)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_rejects_wrong_length() {
        let (_, spec, alloc) = setup(5, 170.0);
        let mut e = EnforcedCluster::new(&spec, &alloc, Watts::ZERO, 6);
        e.apply(&Allocation::new(vec![Watts(150.0)]));
    }
}
