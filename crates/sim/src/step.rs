//! Fine-grained step-response traces (Figs. 4.5 and 4.6).
//!
//! Records DiBA's total power and utility at every algorithm round around a
//! budget step, on the round time base (one ring round ≈ 420 µs on the
//! paper's network), showing the sharp shed on a cut and the gradual fill
//! on a raise.

use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::problem::{AlgError, PowerBudgetProblem};
use dpc_models::metrics::snp_arithmetic;
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::{Seconds, Watts};
use dpc_topology::Graph;

/// One recorded round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPoint {
    /// Round index; the budget steps at round 0.
    pub round: isize,
    /// Wall-clock offset from the step (`round · round_time`).
    pub time: Seconds,
    /// Budget in force.
    pub budget: Watts,
    /// Total power after the round.
    pub total_power: Watts,
    /// SNP after the round.
    pub snp: f64,
}

/// Result of a step-response experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    /// Per-round trace: `warmup_tail` rounds before the step, then the
    /// response.
    pub trace: Vec<RoundPoint>,
    /// Rounds after the step until total power first met the new budget
    /// (0 when never violated; `None` when it never recovered).
    pub rounds_to_feasible: Option<usize>,
}

/// Runs DiBA to rest at `before`, steps the budget to `after`, and records
/// every round.
///
/// # Errors
///
/// Propagates problem-construction and DiBA errors.
pub fn step_response(
    utilities: Vec<QuadraticUtility>,
    graph: Graph,
    before: Watts,
    after: Watts,
    rounds_after: usize,
    round_time: Seconds,
) -> Result<StepResponse, AlgError> {
    let problem = PowerBudgetProblem::new(utilities, before)?;
    let mut run = DibaRun::new(problem, graph, DibaConfig::default())?;
    run.run_to_rest(1e-2, 10, 50_000)
        .ok_or(AlgError::DidNotConverge { iterations: 50_000 })?;

    let mut trace = Vec::with_capacity(rounds_after + 16);
    let record = |run: &DibaRun, round: isize, trace: &mut Vec<RoundPoint>| {
        let problem = run.problem();
        let allocation = run.allocation();
        trace.push(RoundPoint {
            round,
            time: round_time * round as f64,
            budget: problem.budget(),
            total_power: allocation.total(),
            snp: snp_arithmetic(&problem.anps(&allocation)),
        });
    };

    // A short pre-step tail for context.
    for r in -10..0 {
        run.step();
        record(&run, r, &mut trace);
    }

    run.set_budget(after)?;
    let mut rounds_to_feasible = None;
    for r in 0..rounds_after {
        run.step();
        record(&run, r as isize, &mut trace);
        if rounds_to_feasible.is_none() && run.total_power() <= after + Watts(1e-6) {
            rounds_to_feasible = Some(r);
        }
    }
    Ok(StepResponse {
        trace,
        rounds_to_feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn utilities(n: usize, seed: u64) -> Vec<QuadraticUtility> {
        ClusterBuilder::new(n).seed(seed).build().utilities()
    }

    const ROUND: Seconds = Seconds(420e-6);

    #[test]
    fn budget_drop_sheds_power_fast() {
        // Fig. 4.5: 190 W/server → 170 W/server on 50 nodes.
        let r = step_response(
            utilities(50, 1),
            Graph::ring(50),
            Watts(9_500.0),
            Watts(8_500.0),
            800,
            ROUND,
        )
        .unwrap();
        let rounds = r.rounds_to_feasible.expect("must recover");
        assert!(rounds < 300, "took {rounds} rounds to meet the cut");
        // Power at the end sits just under the new budget.
        let last = r.trace.last().unwrap();
        assert!(last.total_power <= Watts(8_500.0));
        assert!(
            last.total_power > Watts(8_200.0),
            "left too much slack: {}",
            last.total_power
        );
    }

    #[test]
    fn budget_raise_fills_gradually() {
        // Fig. 4.6: 170 → 190 W/server.
        let r = step_response(
            utilities(50, 2),
            Graph::ring(50),
            Watts(8_500.0),
            Watts(9_500.0),
            1_500,
            ROUND,
        )
        .unwrap();
        // Never infeasible on a raise.
        assert_eq!(r.rounds_to_feasible, Some(0));
        // Compare against the pre-step level (round −1): round 0 may
        // already capture a large part of the jump.
        let before = r.trace.iter().find(|p| p.round == -1).unwrap();
        let last = r.trace.last().unwrap();
        assert!(last.total_power > before.total_power + Watts(500.0));
        assert!(last.snp > before.snp);
    }

    #[test]
    fn trace_time_base_is_rounds_times_round_time() {
        let r = step_response(
            utilities(10, 3),
            Graph::ring(10),
            Watts(1_800.0),
            Watts(1_700.0),
            50,
            ROUND,
        )
        .unwrap();
        let p5 = r.trace.iter().find(|p| p.round == 5).unwrap();
        assert!((p5.time.0 - 5.0 * ROUND.0).abs() < 1e-12);
        // Pre-step rounds carry the old budget, post-step the new one.
        assert!(r
            .trace
            .iter()
            .filter(|p| p.round < 0)
            .all(|p| p.budget == Watts(1_800.0)));
        assert!(r
            .trace
            .iter()
            .filter(|p| p.round >= 0)
            .all(|p| p.budget == Watts(1_700.0)));
    }
}
