//! Time-series records produced by the simulators.

use dpc_models::units::{Seconds, Watts};

/// One sampled instant of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimePoint {
    /// Simulation time.
    pub t: Seconds,
    /// Budget in force.
    pub budget: Watts,
    /// Total power drawn by the allocation.
    pub total_power: Watts,
    /// System normalized performance (arithmetic mean of ANPs).
    pub snp: f64,
    /// SNP of the centralized-oracle allocation at the same instant.
    pub optimal_snp: f64,
    /// Per-server power caps, recorded only when requested.
    pub allocation: Option<Vec<Watts>>,
}

/// An ordered collection of [`TimePoint`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if time does not advance monotonically.
    pub fn push(&mut self, point: TimePoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.t >= last.t,
                "time went backwards: {} after {}",
                point.t,
                last.t
            );
        }
        self.points.push(point);
    }

    /// The recorded points.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when total power stayed at or below the in-force budget at
    /// every sample (within `tol`).
    pub fn budget_respected(&self, tol: Watts) -> bool {
        self.points.iter().all(|p| p.total_power <= p.budget + tol)
    }

    /// Mean SNP over the run.
    pub fn mean_snp(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.snp).sum::<f64>() / self.points.len() as f64
    }

    /// Mean ratio of achieved SNP to the oracle SNP.
    pub fn mean_optimality(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.snp / p.optimal_snp.max(1e-12))
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Renders `t, budget, power, snp, optimal_snp` rows as CSV (header
    /// included) for offline plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,budget_w,power_w,snp,optimal_snp\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.3},{:.1},{:.1},{:.5},{:.5}\n",
                p.t.0, p.budget.0, p.total_power.0, p.snp, p.optimal_snp
            ));
        }
        out
    }
}

impl FromIterator<TimePoint> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = TimePoint>>(iter: I) -> TimeSeries {
        let mut s = TimeSeries::new();
        for p in iter {
            s.push(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t: f64, budget: f64, power: f64, snp: f64) -> TimePoint {
        TimePoint {
            t: Seconds(t),
            budget: Watts(budget),
            total_power: Watts(power),
            snp,
            optimal_snp: snp + 0.01,
            allocation: None,
        }
    }

    #[test]
    fn push_and_aggregate() {
        let s: TimeSeries = vec![pt(0.0, 100.0, 90.0, 0.8), pt(1.0, 100.0, 95.0, 0.9)]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert!(s.budget_respected(Watts::ZERO));
        assert!((s.mean_snp() - 0.85).abs() < 1e-12);
        assert!(s.mean_optimality() < 1.0);
    }

    #[test]
    fn budget_violation_detected() {
        let s: TimeSeries = vec![pt(0.0, 100.0, 101.0, 0.8)].into_iter().collect();
        assert!(!s.budget_respected(Watts(0.5)));
        assert!(s.budget_respected(Watts(2.0)));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut s = TimeSeries::new();
        s.push(pt(1.0, 1.0, 1.0, 0.5));
        s.push(pt(0.5, 1.0, 1.0, 0.5));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s: TimeSeries = vec![pt(0.0, 100.0, 90.0, 0.8)].into_iter().collect();
        let csv = s.to_csv();
        assert!(csv.starts_with("t_s,budget_w"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn empty_series_aggregates_to_zero() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_snp(), 0.0);
        assert_eq!(s.mean_optimality(), 0.0);
        assert!(s.budget_respected(Watts::ZERO));
    }
}
