//! The budgeter abstraction the simulator drives.
//!
//! A budgeter owns the live allocation problem and reacts to the three
//! events of cluster operation: budget re-allocation, workload change, and
//! the passage of algorithm rounds. The three implementations mirror the
//! schemes compared in the dynamic experiments: DiBA, uniform, and the
//! centralized oracle.

use dpc_alg::centralized;
use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::diba_async::{AsyncConfig, AsyncDibaRun};
use dpc_alg::exec::{Precision, Threads};
use dpc_alg::faults::FaultPlan;
use dpc_alg::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_alg::telemetry::{Telemetry, TelemetryConfig};
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use dpc_topology::Graph;

/// A live power budgeter.
pub trait Budgeter {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// The problem currently being solved.
    fn problem(&self) -> &PowerBudgetProblem;

    /// Re-allocates to a new total budget.
    ///
    /// # Errors
    ///
    /// [`AlgError::InfeasibleBudget`] when the budget cannot cover idle
    /// power.
    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError>;

    /// Reacts to server `i` starting a new workload.
    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility);

    /// Advances `rounds` algorithm rounds (no-op for one-shot schemes).
    fn advance(&mut self, rounds: usize);

    /// The current allocation.
    fn allocation(&self) -> Allocation;

    /// Sets the worker policy for schemes with a parallel round engine.
    /// Results never depend on the worker count, so the default is a
    /// no-op.
    fn set_threads(&mut self, _threads: Threads) {}

    /// Selects the numeric kernel tier for schemes whose engine supports
    /// the two-tier precision contract. Schemes without a fast tier (one-
    /// shot baselines, the asynchronous protocol) ignore it; the default
    /// is a no-op.
    fn set_precision(&mut self, _precision: Precision) {}

    /// Installs a fault-injection plan before the run starts. Only
    /// budgeters with a fault-capable engine (the asynchronous DiBA run)
    /// honor it; the default is a no-op, which models schemes that assume
    /// a reliable substrate.
    fn install_fault_plan(&mut self, _plan: &FaultPlan) {}

    /// Per-node liveness mask for metric aggregation: `None` (the default)
    /// means every node is alive; a fault-capable budgeter reports dead
    /// nodes so the engine excludes their 0 W draw from SNP and oracle
    /// comparisons.
    fn live_nodes(&self) -> Option<Vec<bool>> {
        None
    }

    /// Attaches a round recorder to the underlying engine. The default is
    /// a no-op, which models one-shot schemes with no rounds to record.
    fn set_telemetry(&mut self, _config: TelemetryConfig) {}

    /// The engine's round recorder, when telemetry is enabled (the default
    /// is `None`).
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }
}

/// DiBA running continuously between events.
#[derive(Debug, Clone)]
pub struct DibaBudgeter {
    run: DibaRun,
}

impl DibaBudgeter {
    /// Starts DiBA on the given problem and topology.
    ///
    /// # Errors
    ///
    /// Propagates [`DibaRun::new`] errors.
    pub fn new(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
    ) -> Result<DibaBudgeter, AlgError> {
        Ok(DibaBudgeter {
            run: DibaRun::new(problem, graph, config)?,
        })
    }

    /// Access to the underlying run (residuals, iteration count).
    pub fn run(&self) -> &DibaRun {
        &self.run
    }
}

impl Budgeter for DibaBudgeter {
    fn name(&self) -> &'static str {
        "DiBA"
    }

    fn problem(&self) -> &PowerBudgetProblem {
        self.run.problem()
    }

    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        self.run.set_budget(budget)
    }

    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility) {
        self.run.replace_utility(server, utility);
    }

    fn advance(&mut self, rounds: usize) {
        self.run.run(rounds);
    }

    fn allocation(&self) -> Allocation {
        self.run.allocation()
    }

    fn set_threads(&mut self, threads: Threads) {
        self.run.set_threads(threads);
    }

    fn set_precision(&mut self, precision: Precision) {
        self.run.set_precision(precision);
    }

    fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.run.set_telemetry(config);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.run.telemetry()
    }
}

/// Asynchronous DiBA with timing jitter and (optionally) injected faults —
/// the budgeter behind the resilience experiments. Unlike [`DibaBudgeter`]
/// it models the deployed protocol end to end: partial activation, message
/// delay, and whatever a [`FaultPlan`] throws at it.
#[derive(Debug, Clone)]
pub struct AsyncDibaBudgeter {
    run: AsyncDibaRun,
}

impl AsyncDibaBudgeter {
    /// Starts asynchronous DiBA on the given problem and topology.
    ///
    /// # Errors
    ///
    /// Propagates [`AsyncDibaRun::new`] errors.
    pub fn new(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
        net: AsyncConfig,
    ) -> Result<AsyncDibaBudgeter, AlgError> {
        Ok(AsyncDibaBudgeter {
            run: AsyncDibaRun::new(problem, graph, config, net)?,
        })
    }

    /// Access to the underlying run (health, escrow, conservation).
    pub fn run(&self) -> &AsyncDibaRun {
        &self.run
    }
}

impl Budgeter for AsyncDibaBudgeter {
    fn name(&self) -> &'static str {
        "DiBA-async"
    }

    fn problem(&self) -> &PowerBudgetProblem {
        self.run.problem()
    }

    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        self.run.set_budget(budget)
    }

    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility) {
        self.run.replace_utility(server, utility);
    }

    fn advance(&mut self, rounds: usize) {
        self.run.run(rounds);
    }

    fn allocation(&self) -> Allocation {
        self.run.allocation()
    }

    fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.run.set_fault_plan(plan.clone());
    }

    fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.run.set_telemetry(config);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.run.telemetry()
    }

    fn live_nodes(&self) -> Option<Vec<bool>> {
        use dpc_alg::faults::NodeHealth;
        Some(
            self.run
                .health()
                .iter()
                .map(|&h| h == NodeHealth::Alive)
                .collect(),
        )
    }
}

/// Uniform split recomputed on every event.
#[derive(Debug, Clone)]
pub struct UniformBudgeter {
    problem: PowerBudgetProblem,
    cached: Allocation,
}

impl UniformBudgeter {
    /// Builds the budgeter.
    pub fn new(problem: PowerBudgetProblem) -> UniformBudgeter {
        let cached = dpc_alg::baselines::uniform(&problem);
        UniformBudgeter { problem, cached }
    }

    fn refresh(&mut self) {
        self.cached = dpc_alg::baselines::uniform(&self.problem);
    }
}

impl Budgeter for UniformBudgeter {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn problem(&self) -> &PowerBudgetProblem {
        &self.problem
    }

    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        self.problem = self.problem.with_budget(budget)?;
        self.refresh();
        Ok(())
    }

    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility) {
        let mut utilities = self.problem.utilities().to_vec();
        utilities[server] = utility;
        self.problem = PowerBudgetProblem::new(utilities, self.problem.budget())
            .expect("same sizes stay valid");
        self.refresh();
    }

    fn advance(&mut self, _rounds: usize) {}

    fn allocation(&self) -> Allocation {
        self.cached.clone()
    }
}

/// Centralized oracle re-solved on every event (the "optimal" trace of the
/// dynamic figures).
#[derive(Debug, Clone)]
pub struct OracleBudgeter {
    problem: PowerBudgetProblem,
    cached: Allocation,
}

impl OracleBudgeter {
    /// Builds the budgeter.
    pub fn new(problem: PowerBudgetProblem) -> OracleBudgeter {
        let cached = centralized::solve(&problem).allocation;
        OracleBudgeter { problem, cached }
    }

    fn refresh(&mut self) {
        self.cached = centralized::solve(&self.problem).allocation;
    }
}

impl Budgeter for OracleBudgeter {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn problem(&self) -> &PowerBudgetProblem {
        &self.problem
    }

    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        self.problem = self.problem.with_budget(budget)?;
        self.refresh();
        Ok(())
    }

    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility) {
        let mut utilities = self.problem.utilities().to_vec();
        utilities[server] = utility;
        self.problem = PowerBudgetProblem::new(utilities, self.problem.budget())
            .expect("same sizes stay valid");
        self.refresh();
    }

    fn advance(&mut self, _rounds: usize) {}

    fn allocation(&self) -> Allocation {
        self.cached.clone()
    }
}

/// Primal-dual decomposition re-run on every event — the coordinator-based
/// distributed baseline in dynamic scenarios.
#[derive(Debug, Clone)]
pub struct PrimalDualBudgeter {
    problem: PowerBudgetProblem,
    config: dpc_alg::primal_dual::PrimalDualConfig,
    cached: Allocation,
}

impl PrimalDualBudgeter {
    /// Builds the budgeter and solves once.
    pub fn new(
        problem: PowerBudgetProblem,
        config: dpc_alg::primal_dual::PrimalDualConfig,
    ) -> PrimalDualBudgeter {
        let cached = dpc_alg::primal_dual::solve(&problem, &config).allocation;
        PrimalDualBudgeter {
            problem,
            config,
            cached,
        }
    }

    fn refresh(&mut self) {
        self.cached = dpc_alg::primal_dual::solve(&self.problem, &self.config).allocation;
    }
}

impl Budgeter for PrimalDualBudgeter {
    fn name(&self) -> &'static str {
        "primal-dual"
    }

    fn problem(&self) -> &PowerBudgetProblem {
        &self.problem
    }

    fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        self.problem = self.problem.with_budget(budget)?;
        self.refresh();
        Ok(())
    }

    fn workload_changed(&mut self, server: usize, utility: QuadraticUtility) {
        let mut utilities = self.problem.utilities().to_vec();
        utilities[server] = utility;
        self.problem = PowerBudgetProblem::new(utilities, self.problem.budget())
            .expect("same sizes stay valid");
        self.refresh();
    }

    fn advance(&mut self, _rounds: usize) {}

    fn allocation(&self) -> Allocation {
        self.cached.clone()
    }

    fn set_threads(&mut self, threads: Threads) {
        self.config.threads = threads;
    }

    fn set_precision(&mut self, precision: Precision) {
        self.config.precision = precision;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(1).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn diba_budgeter_advances_and_reacts() {
        let p = problem(20, 3_400.0);
        let mut b = DibaBudgeter::new(p.clone(), Graph::ring(20), DibaConfig::default()).unwrap();
        assert_eq!(b.name(), "DiBA");
        b.advance(200);
        assert!(b.allocation().total() <= p.budget() + Watts(1e-6));
        b.set_budget(Watts(3_300.0)).unwrap();
        b.advance(300);
        assert!(b.allocation().total() <= Watts(3_300.0) + Watts(1e-6));
    }

    #[test]
    fn uniform_budgeter_tracks_budget() {
        let mut b = UniformBudgeter::new(problem(10, 1_700.0));
        assert_eq!(b.allocation().power(0), Watts(170.0));
        b.set_budget(Watts(1_600.0)).unwrap();
        assert_eq!(b.allocation().power(0), Watts(160.0));
        assert_eq!(b.name(), "uniform");
    }

    #[test]
    fn oracle_budgeter_reacts_to_workload_change() {
        let p = problem(10, 1_700.0);
        let mut b = OracleBudgeter::new(p.clone());
        let before = b.allocation();
        // Swap server 0 to a markedly steeper curve.
        let u = p.utility(0);
        let steep = dpc_models::throughput::CurveParams::for_memory_boundedness(0.0)
            .utility(u.p_min(), u.p_max());
        b.workload_changed(0, steep);
        let after = b.allocation();
        assert!(
            after.power(0) >= before.power(0),
            "steeper curve should not lose power"
        );
        assert!(after.total() <= p.budget() + Watts(1e-3));
    }

    #[test]
    fn primal_dual_budgeter_tracks_events() {
        let p = problem(15, 2_550.0);
        let mut b =
            PrimalDualBudgeter::new(p.clone(), dpc_alg::primal_dual::PrimalDualConfig::default());
        assert_eq!(b.name(), "primal-dual");
        let before = p.total_utility(&b.allocation());
        let uniform = p.total_utility(&dpc_alg::baselines::uniform(&p));
        assert!(before >= uniform);
        b.set_budget(Watts(2_450.0)).unwrap();
        assert!(b.allocation().total() <= Watts(2_450.0) + Watts(1e-3));
    }

    #[test]
    fn infeasible_budget_propagates() {
        let mut b = UniformBudgeter::new(problem(10, 1_700.0));
        assert!(b.set_budget(Watts(100.0)).is_err());
    }
}
