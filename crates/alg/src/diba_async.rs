//! Asynchronous DiBA under unreliable timing *and* injected faults.
//!
//! The synchronous rounds of [`crate::diba::DibaRun`] are an idealization:
//! in deployment, nodes act on their own clocks (the paper synchronizes via
//! NTP, Section 4.3.1) and messages ride a real network. This module
//! stresses the algorithm under two layers of imperfection:
//!
//! * **timing jitter** ([`AsyncConfig`]) — partial activation (a node whose
//!   control loop fired late skips the round) and geometric per-message
//!   delivery delay, so neighbors act on stale residuals and slack
//!   transfers spend time "in flight";
//! * **injected faults** ([`FaultPlan`], consumed by
//!   [`AsyncDibaRun::with_faults`]) — per-link message drop / duplication /
//!   reordering, plus scheduled node crashes, restarts, and permanent
//!   departures, with neighbor-timeout failure detection and budget
//!   re-absorption.
//!
//! The residual invariant becomes an inequality while transfers are in
//! flight: the donated (negative) mass has left the sender but not reached
//! the receiver, so `Σ eᵢ ≥ Σ pᵢ − P` on the nodes — feasibility is
//! preserved *conservatively*, never violated. Fault handling extends the
//! ledger rather than breaking it: dropped and undeliverable transfers
//! bounce back to their sender after an RTT, a dead node's mass sits in
//! per-node *escrow* until its silence is detected, and on detection (or a
//! graceful departure) the escrow is re-absorbed by the node's live
//! neighbors — see [`AsyncDibaRun::conservation_drift`] for the exact
//! accounting identity, which the tests pin at zero through every fault.

use crate::diba::{node_action_into, DibaConfig, DibaRun, NodeParams, NodeScratch};
use crate::exec::chunked_sum;
use crate::faults::{FaultPlan, FaultSampler, NodeFaultKind, NodeHealth};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use crate::telemetry::{FaultEvent, FaultEventKind, RoundRecord, Telemetry, TelemetryConfig};
use dpc_models::units::Watts;
use dpc_topology::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Network/scheduling imperfections for the asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Probability a node takes its action in a given round, in `(0, 1]`.
    pub activation: f64,
    /// Probability a message is delayed by (at least) one extra round; the
    /// delay is geometric with this parameter, capped at `max_delay`.
    pub delay_prob: f64,
    /// Hard cap on per-message delay, in rounds.
    pub max_delay: usize,
    /// RNG seed (the run is deterministic given the seed).
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            activation: 0.8,
            delay_prob: 0.3,
            max_delay: 5,
            seed: 0,
        }
    }
}

/// What an in-flight message is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    /// A normal gossip message: residual snapshot plus a slack transfer.
    Data,
    /// A failed delivery bouncing back: the transport reports the loss and
    /// the sender reclaims the transfer (no snapshot payload).
    Bounce,
}

/// An in-flight message, due at `arrival`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    arrival: usize,
    to: usize,
    from: usize,
    e_snapshot: f64,
    transfer: f64,
    kind: MsgKind,
}

/// Asynchronous DiBA run over a fixed barrier weight.
///
/// Runs the identical per-node program as the synchronous reference
/// ([`node_action_into`]); only the scheduling, delivery, and fault handling
/// differ. Built fault-free by [`AsyncDibaRun::new`] or with an injected
/// [`FaultPlan`] by [`AsyncDibaRun::with_faults`]; under the benign plan
/// ([`FaultPlan::none`]) both paths are trajectory-identical bit for bit
/// (fault draws come from a separate RNG stream that is never consulted).
#[derive(Debug, Clone)]
pub struct AsyncDibaRun {
    problem: PowerBudgetProblem,
    graph: Graph,
    params: NodeParams,
    net: AsyncConfig,
    rng: StdRng,
    p: Vec<f64>,
    e: Vec<f64>,
    /// Last residual heard from each neighbor: `last_heard[i]` aligned with
    /// `graph.neighbors(i)`.
    last_heard: Vec<Vec<f64>>,
    in_flight: Vec<InFlight>,
    round: usize,
    // --- fault state ---
    faults: FaultPlan,
    sampler: FaultSampler,
    health: Vec<NodeHealth>,
    /// Residual-minus-power mass of dead nodes awaiting re-absorption,
    /// plus any transfers that bounced back to a node after it died.
    escrow: Vec<f64>,
    /// Escrow already re-absorbed (dead node detected or departed): late
    /// bounces flush straight to the live neighbors instead of stranding.
    settled: Vec<bool>,
    /// Per-node link mask aligned with `graph.neighbors(i)`: `false` once
    /// the neighbor timed out (pruned); revived on hearing from it again.
    link_alive: Vec<Vec<bool>>,
    /// Round each neighbor was last heard from, aligned like `link_alive`.
    last_heard_round: Vec<Vec<usize>>,
    /// Crashed nodes whose scheduled restart could not yet gather enough
    /// slack to boot; retried every round.
    pending_restarts: Vec<usize>,
    /// Mass donated by a dying node that had no live neighbor left. Never
    /// spent (it is non-positive slack), only accounted.
    stranded: f64,
    /// `true` while the live subgraph is disconnected (DiBA's convergence
    /// guarantee needs connectivity; the run keeps going per component).
    partitioned: bool,
    /// Round recorder; `None` (the default) skips recording entirely.
    telemetry: Option<Box<Telemetry>>,
    /// Message accounting of the round in flight (plain counters — they
    /// never touch solver state or the RNG streams, so telemetry cannot
    /// perturb the trajectory).
    round_sent: u64,
    round_dropped: u64,
    round_duplicated: u64,
    round_bounced: u64,
    /// Reusable per-node working memory: steady-state rounds allocate
    /// nothing (the transfer buffer lives here, not in a fresh `Vec`).
    scratch: NodeScratch,
    /// Staging for the live-link residuals of a node with pruned links.
    pruned_e: Vec<f64>,
    /// Neighbor-slot indices matching `pruned_e`.
    pruned_slots: Vec<usize>,
}

impl AsyncDibaRun {
    /// Builds a fault-free asynchronous run with the same initialization as
    /// the synchronous reference. Equivalent to [`AsyncDibaRun::with_faults`]
    /// with [`FaultPlan::none`].
    ///
    /// # Errors
    ///
    /// Propagates [`DibaRun::new`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `activation` is not in `(0, 1]` or `delay_prob` not in
    /// `[0, 1)`.
    pub fn new(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
        net: AsyncConfig,
    ) -> Result<AsyncDibaRun, AlgError> {
        Self::with_faults(problem, graph, config, net, FaultPlan::none())
    }

    /// Builds an asynchronous run with an injected fault plan.
    ///
    /// # Errors
    ///
    /// Propagates [`DibaRun::new`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `activation` is not in `(0, 1]`, `delay_prob` not in
    /// `[0, 1)`, or the plan fails [`FaultPlan::validate`].
    pub fn with_faults(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
        net: AsyncConfig,
        faults: FaultPlan,
    ) -> Result<AsyncDibaRun, AlgError> {
        assert!(
            net.activation > 0.0 && net.activation <= 1.0,
            "activation {} not in (0, 1]",
            net.activation
        );
        assert!(
            (0.0..1.0).contains(&net.delay_prob),
            "delay_prob {} not in [0, 1)",
            net.delay_prob
        );
        if let Err(msg) = faults.validate(problem.len()) {
            panic!("invalid fault plan: {msg}");
        }
        config.validate()?;
        // The reference run exists only to resolve params and the initial
        // state; its own recorder would go unread, so build it without one.
        let reference = DibaRun::new(
            problem.clone(),
            graph.clone(),
            DibaConfig {
                telemetry: TelemetryConfig::off(),
                ..config
            },
        )?;
        let telemetry = if config.telemetry.enabled {
            Some(Box::new(Telemetry::new(config.telemetry)))
        } else {
            None
        };
        let params = reference.params();
        let states = reference.node_states();
        let p: Vec<f64> = states.iter().map(|s| s.0).collect();
        let e: Vec<f64> = states.iter().map(|s| s.1).collect();
        let n = problem.len();
        let last_heard = (0..n)
            .map(|i| graph.neighbors(i).iter().map(|&j| e[j]).collect())
            .collect();
        let link_alive = (0..n)
            .map(|i| vec![true; graph.neighbors(i).len()])
            .collect();
        let last_heard_round = (0..n)
            .map(|i| vec![0usize; graph.neighbors(i).len()])
            .collect();
        let sampler = FaultSampler::new(&faults);
        let max_degree = (0..n).map(|i| graph.neighbors(i).len()).max().unwrap_or(0);
        Ok(AsyncDibaRun {
            problem,
            graph,
            params,
            rng: StdRng::seed_from_u64(net.seed),
            net,
            p,
            e,
            last_heard,
            in_flight: Vec::new(),
            round: 0,
            faults,
            sampler,
            health: vec![NodeHealth::Alive; n],
            escrow: vec![0.0; n],
            settled: vec![false; n],
            link_alive,
            last_heard_round,
            pending_restarts: Vec::new(),
            stranded: 0.0,
            partitioned: false,
            telemetry,
            round_sent: 0,
            round_dropped: 0,
            round_duplicated: 0,
            round_bounced: 0,
            scratch: NodeScratch::with_capacity(max_degree),
            pruned_e: Vec::new(),
            pruned_slots: Vec::new(),
        })
    }

    /// The round recorder, when telemetry is enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Attaches (or, with a disabled config, detaches) a fresh round
    /// recorder. Recording starts from the next round; the trajectory is
    /// unaffected either way.
    pub fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = if config.enabled {
            Some(Box::new(Telemetry::new(config)))
        } else {
            None
        };
    }

    /// Records a fault-machinery event (no-op without a recorder).
    fn note_event(&mut self, node: usize, kind: FaultEventKind, mass: f64) {
        if let Some(t) = self.telemetry.as_mut() {
            t.record_event(FaultEvent {
                round: self.round as u64,
                node,
                kind,
                mass,
            });
        }
    }

    /// Samples the round that just finished into the recorder. Pure
    /// observation: every aggregate is read from solver state sealed for
    /// the round, using the same fixed-chunk reductions as the engines.
    fn record_round(&mut self) {
        let mut max_abs_e = 0.0_f64;
        let mut norm2 = 0.0_f64;
        for (&pi, &ei) in self.p.iter().zip(&self.e) {
            max_abs_e = max_abs_e.max(ei.abs());
            norm2 += pi * pi;
        }
        let record = RoundRecord {
            round: self.round as u64,
            budget: self.problem.budget().0,
            sum_p: chunked_sum(&self.p),
            norm2_p: norm2.sqrt(),
            sum_e: chunked_sum(&self.e),
            max_abs_e,
            msgs_sent: self.round_sent,
            msgs_dropped: self.round_dropped,
            msgs_duplicated: self.round_duplicated,
            msgs_bounced: self.round_bounced,
            in_flight: self.in_flight.len() as u64,
            inflight_mass: self.in_flight.iter().map(|m| m.transfer).sum(),
            escrow_total: self.escrow.iter().sum(),
            stranded: self.stranded,
            live: self.live_count() as u64,
            workers: 1,
            ..RoundRecord::default()
        };
        if let Some(t) = self.telemetry.as_mut() {
            t.record_round(record);
        }
    }

    /// Replaces the fault plan and resets all fault state (health, escrow,
    /// pruned links). Intended to be called before the first [`step`]
    /// — installing a plan mid-run on a cluster that already suffered
    /// faults is a caller bug.
    ///
    /// [`step`]: AsyncDibaRun::step
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        if let Err(msg) = faults.validate(self.problem.len()) {
            panic!("invalid fault plan: {msg}");
        }
        let n = self.problem.len();
        self.sampler = FaultSampler::new(&faults);
        self.faults = faults;
        self.health = vec![NodeHealth::Alive; n];
        self.escrow = vec![0.0; n];
        self.settled = vec![false; n];
        for row in &mut self.link_alive {
            row.iter_mut().for_each(|l| *l = true);
        }
        self.pending_restarts.clear();
        self.stranded = 0.0;
        self.partitioned = false;
    }

    /// Rounds elapsed.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current allocation (dead nodes draw 0 W).
    pub fn allocation(&self) -> Allocation {
        self.p.iter().map(|&p| Watts(p)).collect()
    }

    /// Current total power.
    pub fn total_power(&self) -> Watts {
        Watts(self.p.iter().sum())
    }

    /// Current total utility, summed over live nodes (a dead node produces
    /// no throughput; evaluating its quadratic at 0 W would be nonsense).
    pub fn total_utility(&self) -> f64 {
        self.problem
            .utilities()
            .iter()
            .zip(&self.p)
            .zip(&self.health)
            .filter(|&(_, h)| *h == NodeHealth::Alive)
            .map(|((u, &p), _)| u.value(Watts(p)))
            .sum()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The problem being solved (utilities and current budget).
    pub fn problem(&self) -> &PowerBudgetProblem {
        &self.problem
    }

    /// The local residual estimates `eᵢ` (watts); dead nodes read 0.
    pub fn residuals(&self) -> &[f64] {
        &self.e
    }

    /// Per-node health under the installed fault plan.
    pub fn health(&self) -> &[NodeHealth] {
        &self.health
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.health
            .iter()
            .filter(|&&h| h == NodeHealth::Alive)
            .count()
    }

    /// Escrowed residual mass of dead nodes not yet re-absorbed (≤ 0).
    pub fn escrow_total(&self) -> f64 {
        self.escrow.iter().sum()
    }

    /// Slack mass stranded by nodes that died with no live neighbor (≤ 0).
    pub fn stranded(&self) -> f64 {
        self.stranded
    }

    /// `true` while churn has disconnected the live subgraph. DiBA's
    /// convergence proof requires a connected graph; a partitioned run
    /// stays feasible but each component equilibrates on its own.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Residual accounting drift:
    /// `Σe + Σescrow + Σin-flight + stranded − (Σp − P)`, which must stay at
    /// exactly zero — mass conservation including the network and every
    /// fault-handling ledger. Because every term on the left is ≤ 0, this
    /// identity is also the feasibility proof: `Σp ≤ P` at all times.
    pub fn conservation_drift(&self) -> f64 {
        let on_nodes: f64 = self.e.iter().sum();
        let flying: f64 = self.in_flight.iter().map(|m| m.transfer).sum();
        let escrowed: f64 = self.escrow.iter().sum();
        let sum_p: f64 = self.p.iter().sum();
        (on_nodes + flying + escrowed + self.stranded - (sum_p - self.problem.budget().0)).abs()
    }

    /// Changes the budget in place: the shift is split across live nodes'
    /// residuals so the conservation identity is preserved exactly.
    ///
    /// # Errors
    ///
    /// [`AlgError::InfeasibleBudget`] when the new budget is below `Σp_min`.
    pub fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        let old = self.problem.budget();
        self.problem = self.problem.with_budget(budget)?;
        let live: Vec<usize> = (0..self.p.len())
            .filter(|&i| self.health[i] == NodeHealth::Alive)
            .collect();
        let shift = (old.0 - budget.0) / live.len().max(1) as f64;
        for i in live {
            self.e[i] += shift;
        }
        Ok(())
    }

    /// Replaces node `i`'s utility (a workload change), clamping its power
    /// into the new box and adjusting the residual by the clamp so the
    /// conservation identity is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace_utility(&mut self, i: usize, utility: dpc_models::QuadraticUtility) {
        let mut utilities = self.problem.utilities().to_vec();
        utilities[i] = utility;
        let budget = self.problem.budget();
        self.problem = PowerBudgetProblem::new(utilities, budget)
            .expect("replacing one utility keeps the problem non-empty");
        if self.health[i] != NodeHealth::Alive {
            return; // a dead node keeps p = 0 until it restarts
        }
        let u = self.problem.utility(i);
        let clamped = self.p[i].clamp(u.p_min().0, u.p_max().0);
        self.e[i] += clamped - self.p[i];
        self.p[i] = clamped;
    }

    /// One asynchronous round: fire scheduled node faults, deliver due
    /// messages (bouncing undeliverable ones), run failure detection, then
    /// let a random subset of live nodes act and enqueue their messages
    /// with random delays and link faults.
    pub fn step(&mut self) {
        self.round += 1;
        self.round_sent = 0;
        self.round_dropped = 0;
        self.round_duplicated = 0;
        self.round_bounced = 0;
        if !self.faults.schedule.is_empty() || !self.pending_restarts.is_empty() {
            self.apply_schedule();
        }
        self.deliver_due();
        if self.faults.detect_after.is_some() {
            self.detect_failures();
        }
        self.act_nodes();
        if self.telemetry.is_some() {
            self.record_round();
        }
    }

    /// Runs `rounds` asynchronous rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs `rounds` rounds as one batch. Bitwise identical to `rounds`
    /// [`AsyncDibaRun::step`] calls — state, RNG streams, and telemetry
    /// records included; provided for API symmetry with
    /// [`DibaRun::step_many`].
    pub fn step_many(&mut self, rounds: usize) {
        self.run(rounds);
    }

    /// Runs until feasible and within `rel_tol` of `reference_utility`;
    /// returns rounds used.
    pub fn run_until_within(
        &mut self,
        reference_utility: f64,
        rel_tol: f64,
        max_rounds: usize,
    ) -> Option<usize> {
        let start = self.round;
        for _ in 0..max_rounds {
            let feasible = self.total_power() <= self.problem.budget() + Watts(1e-6);
            let gap = (reference_utility - self.total_utility()).abs()
                / reference_utility.abs().max(1e-12);
            if feasible && gap < rel_tol {
                return Some(self.round - start);
            }
            self.step();
        }
        None
    }

    // ------------------------------------------------------------------
    // Fault machinery
    // ------------------------------------------------------------------

    /// Fires node events scheduled for this round, then retries deferred
    /// restarts.
    fn apply_schedule(&mut self) {
        for idx in 0..self.faults.schedule.len() {
            let f = self.faults.schedule[idx];
            if f.round != self.round {
                continue;
            }
            match f.kind {
                NodeFaultKind::Crash => self.crash(f.node),
                NodeFaultKind::Depart => self.depart(f.node),
                NodeFaultKind::Restart => {
                    if !self.try_restart(f.node) {
                        self.pending_restarts.push(f.node);
                    }
                }
            }
        }
        if !self.pending_restarts.is_empty() {
            let pending = std::mem::take(&mut self.pending_restarts);
            for node in pending {
                if !self.try_restart(node) {
                    self.pending_restarts.push(node);
                }
            }
        }
    }

    /// Node `i` powers off silently: its power draw stops and its residual
    /// mass `e − p` moves to escrow, keeping the conservation ledger exact.
    fn crash(&mut self, i: usize) {
        if self.health[i] != NodeHealth::Alive {
            return;
        }
        let escrowed = self.e[i] - self.p[i];
        self.escrow[i] += escrowed;
        self.e[i] = 0.0;
        self.p[i] = 0.0;
        self.health[i] = NodeHealth::Crashed;
        self.settled[i] = false;
        self.partitioned = !self.live_connected();
        self.note_event(i, FaultEventKind::Crash, escrowed);
    }

    /// Node `i` leaves permanently. A live node departs gracefully,
    /// donating `e − p` to its live neighbors in a farewell (so the budget
    /// it occupied is re-absorbed immediately); a crashed node is removed
    /// by the management plane, which settles its escrow the same way.
    fn depart(&mut self, i: usize) {
        match self.health[i] {
            NodeHealth::Alive => {
                let farewell = self.e[i] - self.p[i];
                self.e[i] = 0.0;
                self.p[i] = 0.0;
                self.health[i] = NodeHealth::Departed;
                self.settled[i] = true;
                self.donate_to_live_neighbors(i, farewell);
                self.note_event(i, FaultEventKind::Depart, farewell);
            }
            NodeHealth::Crashed => {
                self.health[i] = NodeHealth::Departed;
                if !self.settled[i] {
                    self.settle(i);
                }
                self.note_event(i, FaultEventKind::Depart, 0.0);
            }
            NodeHealth::Departed => return,
        }
        // Both directions of every incident link go down for good.
        for slot in 0..self.graph.neighbors(i).len() {
            self.link_alive[i][slot] = false;
        }
        for (j, row) in self.link_alive.iter_mut().enumerate() {
            if let Some(slot) = self.graph.neighbors(j).iter().position(|&k| k == i) {
                row[slot] = false;
            }
        }
        self.partitioned = !self.live_connected();
    }

    /// Re-absorbs a dead node's escrow into its live neighbors' residuals.
    fn settle(&mut self, i: usize) {
        self.settled[i] = true;
        let amount = std::mem::take(&mut self.escrow[i]);
        self.donate_to_live_neighbors(i, amount);
        self.note_event(i, FaultEventKind::Settle, amount);
    }

    /// Splits `amount` (≤ 0 slack mass) equally over `i`'s live neighbors;
    /// strands it when none is left (an island of dead nodes).
    fn donate_to_live_neighbors(&mut self, i: usize, amount: f64) {
        if amount == 0.0 {
            return;
        }
        let live: Vec<usize> = self
            .graph
            .neighbors(i)
            .iter()
            .copied()
            .filter(|&j| self.health[j] == NodeHealth::Alive)
            .collect();
        if live.is_empty() {
            self.stranded += amount;
            return;
        }
        let share = amount / live.len() as f64;
        for j in live {
            self.e[j] += share;
        }
    }

    /// Attempts to boot a crashed node at its idle power. The boot needs
    /// `p_min + margin` watts of headroom: first from the node's own
    /// escrow (if not yet re-absorbed), then from each live neighbor's
    /// spare slack, and finally — since a converged cluster has no spare
    /// slack at all — from neighbors *throttling down* toward their own
    /// `p_min` to make room (the admission-control handshake; the normal
    /// diffusion dynamics re-equalize afterwards). Returns `false`
    /// (deferring to the next round) when not enough headroom exists yet.
    fn try_restart(&mut self, i: usize) -> bool {
        match self.health[i] {
            NodeHealth::Crashed => {}
            // Restarting a live node is a no-op; a departed node is gone.
            NodeHealth::Alive | NodeHealth::Departed => return true,
        }
        let p_min = self.problem.utility(i).p_min().0;
        let need = p_min + self.params.margin;
        let own = if self.settled[i] {
            0.0
        } else {
            -self.escrow[i]
        };
        // Pass 1 (read-only): can enough headroom be gathered at all?
        // `spare` donates existing slack above the margin; `cut` throttles
        // the donor toward its own box floor, creating new headroom.
        let mut donations: Vec<(usize, f64, f64)> = Vec::new();
        let mut have = own;
        for &j in self.graph.neighbors(i) {
            if have >= need {
                break;
            }
            if self.health[j] != NodeHealth::Alive {
                continue;
            }
            let spare = ((-self.e[j]) - self.params.margin).max(0.0);
            let spare_take = spare.min(need - have);
            have += spare_take;
            let cut_cap = (self.p[j] - self.problem.utility(j).p_min().0).max(0.0);
            let cut_take = cut_cap.min(need - have);
            have += cut_take;
            if spare_take > 0.0 || cut_take > 0.0 {
                donations.push((j, spare_take, cut_take));
            }
        }
        if have < need {
            return false; // admission control: not enough headroom yet
        }
        // Pass 2: apply. A spare donation moves slack (e_j += d); a power
        // cut lowers p_j with e_j unchanged — either way the donor's
        // `e − p` rises by the donated amount, so with the boot below the
        // ledger change is exactly `p_min` on both sides of the invariant.
        for &(j, spare_take, cut_take) in &donations {
            self.e[j] += spare_take;
            self.p[j] -= cut_take;
        }
        self.escrow[i] = 0.0;
        self.settled[i] = false;
        self.health[i] = NodeHealth::Alive;
        self.p[i] = p_min;
        self.e[i] = p_min - have;
        // Fresh boot: revive own links and assume residual parity with the
        // neighbors until real gossip arrives (prevents blind donations).
        for slot in 0..self.graph.neighbors(i).len() {
            self.link_alive[i][slot] = true;
            self.last_heard[i][slot] = self.e[i];
            self.last_heard_round[i][slot] = self.round;
        }
        self.partitioned = !self.live_connected();
        self.note_event(i, FaultEventKind::Restart, p_min);
        true
    }

    /// `true` when the subgraph induced by live nodes is connected.
    fn live_connected(&self) -> bool {
        let alive: Vec<bool> = self
            .health
            .iter()
            .map(|&h| h == NodeHealth::Alive)
            .collect();
        self.graph.is_connected_among(&alive)
    }

    /// Delivers every message due this round. Data for a dead node bounces
    /// back to its sender after the link RTT; bounced transfers are
    /// reclaimed by the sender (or its escrow, if it died in the meantime).
    fn deliver_due(&mut self) {
        let round = self.round;
        let mut delivered = Vec::new();
        self.in_flight.retain(|m| {
            if m.arrival <= round {
                delivered.push(*m);
                false
            } else {
                true
            }
        });
        for m in delivered {
            match m.kind {
                MsgKind::Data => {
                    if self.health[m.to] == NodeHealth::Alive {
                        self.e[m.to] += m.transfer;
                        let slot = self
                            .graph
                            .neighbors(m.to)
                            .iter()
                            .position(|&j| j == m.from)
                            .expect("message along a graph edge");
                        self.last_heard[m.to][slot] = m.e_snapshot;
                        self.last_heard_round[m.to][slot] = round;
                        // Hearing from a pruned neighbor revives the link.
                        self.link_alive[m.to][slot] = true;
                    } else if m.transfer != 0.0 {
                        // Undeliverable: the transport bounces the transfer
                        // back to the sender after the RTT.
                        self.round_bounced += 1;
                        self.in_flight.push(InFlight {
                            arrival: round + self.faults.link.rtt.max(1),
                            to: m.from,
                            from: m.to,
                            e_snapshot: 0.0,
                            transfer: m.transfer,
                            kind: MsgKind::Bounce,
                        });
                    }
                }
                MsgKind::Bounce => self.reclaim(m.to, m.transfer),
            }
        }
    }

    /// Returns a bounced transfer to node `i`: to its residual while alive,
    /// to its escrow when dead (flushed onward immediately if the escrow
    /// was already settled).
    fn reclaim(&mut self, i: usize, transfer: f64) {
        if self.health[i] == NodeHealth::Alive {
            self.e[i] += transfer;
        } else if self.settled[i] {
            self.donate_to_live_neighbors(i, transfer);
        } else {
            self.escrow[i] += transfer;
        }
    }

    /// Neighbor-timeout failure detection: prunes links silent for longer
    /// than the plan's timeout, and on the first detection of a genuinely
    /// dead neighbor re-absorbs its escrowed budget. A pruned link to a
    /// live node (a false positive under heavy loss) revives as soon as a
    /// message gets through.
    fn detect_failures(&mut self) {
        let timeout = match self.faults.detect_after {
            Some(t) => t,
            None => return,
        };
        let n = self.p.len();
        for i in 0..n {
            if self.health[i] != NodeHealth::Alive {
                continue;
            }
            for slot in 0..self.graph.neighbors(i).len() {
                if !self.link_alive[i][slot] {
                    continue;
                }
                if self.round.saturating_sub(self.last_heard_round[i][slot]) > timeout {
                    self.link_alive[i][slot] = false;
                    let j = self.graph.neighbors(i)[slot];
                    if self.health[j] != NodeHealth::Alive && !self.settled[j] {
                        self.note_event(j, FaultEventKind::Detect, 0.0);
                        self.settle(j);
                    }
                }
            }
        }
    }

    /// The acting phase: each live node activates with probability
    /// `activation`, runs [`node_action_into`] over its live links (reusing
    /// the run's persistent scratch, so steady-state rounds never touch the
    /// allocator), and sends one message per live link, subject to delay
    /// and link faults.
    fn act_nodes(&mut self) {
        for i in 0..self.p.len() {
            if self.health[i] != NodeHealth::Alive {
                continue;
            }
            if self.rng.gen_range(0.0..1.0) >= self.net.activation {
                continue;
            }
            let degree = self.graph.neighbors(i).len();
            let all_links_up = self.link_alive[i].iter().all(|&l| l);
            let dp = if all_links_up {
                node_action_into(
                    self.problem.utility(i),
                    self.p[i],
                    self.e[i],
                    &self.last_heard[i],
                    &self.params,
                    &mut self.scratch,
                )
            } else {
                // Pruned links drop out of the local program entirely: the
                // node re-estimates against its live neighborhood only, so
                // slack diffusion renormalizes to the surviving degree.
                self.pruned_e.clear();
                self.pruned_slots.clear();
                for slot in 0..degree {
                    if self.link_alive[i][slot] {
                        self.pruned_slots.push(slot);
                        self.pruned_e.push(self.last_heard[i][slot]);
                    }
                }
                node_action_into(
                    self.problem.utility(i),
                    self.p[i],
                    self.e[i],
                    &self.pruned_e,
                    &self.params,
                    &mut self.scratch,
                )
            };
            // Same accounting as `NodeAction::own_residual_delta`, same
            // summation order, so the trajectory is bit-identical to the
            // allocating path it replaces.
            let sent_total: f64 = self.scratch.transfers.iter().sum();
            self.p[i] += dp;
            self.e[i] += dp - sent_total;
            for k in 0..self.scratch.transfers.len() {
                let t = self.scratch.transfers[k];
                let slot = if all_links_up {
                    k
                } else {
                    self.pruned_slots[k]
                };
                let j = self.graph.neighbors(i)[slot];
                let mut delay = 1usize;
                while delay < self.net.max_delay
                    && self.rng.gen_range(0.0..1.0) < self.net.delay_prob
                {
                    delay += 1;
                }
                let fate = self.sampler.fate();
                self.round_sent += 1;
                if fate.dropped {
                    self.round_dropped += 1;
                    if t != 0.0 {
                        self.round_bounced += 1;
                        // The transport reports the loss; the sender gets
                        // the transfer back one RTT after it would arrive.
                        self.in_flight.push(InFlight {
                            arrival: self.round + delay + self.faults.link.rtt.max(1),
                            to: i,
                            from: j,
                            e_snapshot: 0.0,
                            transfer: t,
                            kind: MsgKind::Bounce,
                        });
                    }
                    continue;
                }
                let arrival = self.round + delay + fate.extra_delay;
                self.in_flight.push(InFlight {
                    arrival,
                    to: j,
                    from: i,
                    e_snapshot: self.e[i],
                    transfer: t,
                    kind: MsgKind::Data,
                });
                if fate.dup_lag > 0 {
                    // The duplicate re-delivers only the (stale) snapshot:
                    // the receiver deduplicates the slack payload.
                    self.round_duplicated += 1;
                    self.in_flight.push(InFlight {
                        arrival: arrival + fate.dup_lag,
                        to: j,
                        from: i,
                        e_snapshot: self.e[i],
                        transfer: 0.0,
                        kind: MsgKind::Data,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use crate::faults::LinkFaults;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, per_server: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(per_server * n as f64)).unwrap()
    }

    fn run(n: usize, net: AsyncConfig) -> (PowerBudgetProblem, AsyncDibaRun) {
        let p = problem(n, 170.0, 3);
        let r = AsyncDibaRun::new(p.clone(), Graph::ring(n), DibaConfig::default(), net).unwrap();
        (p, r)
    }

    fn lossy_link(drop: f64) -> LinkFaults {
        LinkFaults {
            drop,
            duplicate: drop / 2.0,
            reorder: drop,
            reorder_max: 4,
            rtt: 3,
        }
    }

    /// Oracle utility over the surviving nodes only, at the full budget.
    fn survivor_optimal(p: &PowerBudgetProblem, dead: &[usize]) -> f64 {
        let utilities: Vec<_> = p
            .utilities()
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, u)| *u)
            .collect();
        let survivors = PowerBudgetProblem::new(utilities, p.budget()).unwrap();
        survivors.total_utility(&centralized::solve(&survivors).allocation)
    }

    #[test]
    fn conservation_holds_with_delays_and_partial_activation() {
        let (_, mut r) = run(40, AsyncConfig::default());
        for _ in 0..500 {
            r.step();
            assert!(
                r.conservation_drift() < 1e-6,
                "drift {}",
                r.conservation_drift()
            );
        }
        // Messages really do spend time in flight.
        assert!(r.in_flight() > 0);
    }

    #[test]
    fn budget_never_violated_despite_network_chaos() {
        let net = AsyncConfig {
            activation: 0.5,
            delay_prob: 0.5,
            max_delay: 8,
            seed: 9,
        };
        let (p, mut r) = run(40, net);
        for _ in 0..800 {
            r.step();
            assert!(r.total_power() <= p.budget() + Watts(1e-6));
        }
    }

    #[test]
    fn still_converges_to_near_optimal() {
        let (p, mut r) = run(60, AsyncConfig::default());
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let rounds = r.run_until_within(opt, 0.015, 40_000);
        assert!(rounds.is_some(), "async run failed to converge");
    }

    #[test]
    fn synchronous_limit_matches_reference_behaviour() {
        // activation 1, no delay beyond the mandatory 1-round latency:
        // behaves like the message-passing prototype (one-round staleness).
        let net = AsyncConfig {
            activation: 1.0,
            delay_prob: 0.0,
            max_delay: 1,
            seed: 1,
        };
        let (p, mut r) = run(30, net);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let rounds = r.run_until_within(opt, 0.01, 30_000).expect("converges");
        // Within small factor of the synchronous reference's budget.
        assert!(rounds < 20_000, "took {rounds}");
    }

    #[test]
    fn degraded_network_slows_but_does_not_break_convergence() {
        let p = problem(40, 170.0, 5);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let fast_net = AsyncConfig {
            activation: 1.0,
            delay_prob: 0.0,
            max_delay: 1,
            seed: 2,
        };
        let slow_net = AsyncConfig {
            activation: 0.4,
            delay_prob: 0.6,
            max_delay: 10,
            seed: 2,
        };
        let mut fast =
            AsyncDibaRun::new(p.clone(), Graph::ring(40), DibaConfig::default(), fast_net).unwrap();
        let mut slow =
            AsyncDibaRun::new(p.clone(), Graph::ring(40), DibaConfig::default(), slow_net).unwrap();
        let rf = fast
            .run_until_within(opt, 0.02, 60_000)
            .expect("fast converges");
        let rs = slow
            .run_until_within(opt, 0.02, 60_000)
            .expect("slow converges");
        assert!(
            rs >= rf,
            "degraded network should not be faster: {rs} vs {rf}"
        );
    }

    #[test]
    #[should_panic(expected = "activation")]
    fn rejects_zero_activation() {
        let p = problem(4, 170.0, 1);
        let net = AsyncConfig {
            activation: 0.0,
            ..Default::default()
        };
        let _ = AsyncDibaRun::new(p, Graph::ring(4), DibaConfig::default(), net);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn rejects_out_of_range_fault_schedule() {
        let p = problem(4, 170.0, 1);
        let plan = FaultPlan::none().and(10, 99, NodeFaultKind::Crash);
        let _ = AsyncDibaRun::with_faults(
            p,
            Graph::ring(4),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        );
    }

    #[test]
    fn zero_fault_plan_is_bitwise_inert() {
        let (_, mut plain) = run(30, AsyncConfig::default());
        let p = problem(30, 170.0, 3);
        let mut faulted = AsyncDibaRun::with_faults(
            p,
            Graph::ring(30),
            DibaConfig::default(),
            AsyncConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        for _ in 0..400 {
            plain.step();
            faulted.step();
        }
        assert_eq!(plain.allocation(), faulted.allocation());
        assert_eq!(plain.residuals(), faulted.residuals());
        assert_eq!(plain.in_flight(), faulted.in_flight());
    }

    #[test]
    fn conservation_and_feasibility_survive_lossy_links() {
        let p = problem(40, 170.0, 3);
        let plan = FaultPlan::with_link(11, lossy_link(0.2));
        let mut r = AsyncDibaRun::with_faults(
            p.clone(),
            Graph::ring(40),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        for _ in 0..1_500 {
            r.step();
            assert!(
                r.conservation_drift() < 1e-6,
                "drift {} at round {}",
                r.conservation_drift(),
                r.round()
            );
            assert!(r.total_power() <= p.budget() + Watts(1e-6));
        }
        // Still converges (more slowly) despite 20% loss.
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        assert!(
            r.run_until_within(opt, 0.03, 80_000).is_some(),
            "lossy run failed to converge"
        );
    }

    #[test]
    fn crash_is_detected_escrow_reabsorbed_and_budget_reclaimed() {
        let p = problem(40, 170.0, 3);
        let victim = 7usize;
        let plan = FaultPlan::with_link(5, lossy_link(0.1))
            .and(100, victim, NodeFaultKind::Crash)
            .detect_after(Some(30));
        let mut r = AsyncDibaRun::with_faults(
            p.clone(),
            Graph::ring_with_chords(40, 3),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        for _ in 0..12_000 {
            r.step();
            assert!(
                r.conservation_drift() < 1e-6,
                "drift {} at round {}",
                r.conservation_drift(),
                r.round()
            );
            assert!(r.total_power() <= p.budget() + Watts(1e-6));
        }
        assert_eq!(r.health()[victim], NodeHealth::Crashed);
        assert_eq!(r.escrow_total(), 0.0, "escrow never re-absorbed");
        assert!(!r.partitioned(), "chorded ring survives one crash");
        // The freed budget is re-absorbed: survivors approach the oracle
        // utility of the 39-node problem at the full budget.
        let opt = survivor_optimal(&p, &[victim]);
        let gap = (opt - r.total_utility()).abs() / opt;
        assert!(gap < 0.03, "survivors did not re-absorb budget: gap {gap}");
    }

    #[test]
    fn crashed_node_restarts_and_cluster_reconverges() {
        let p = problem(30, 170.0, 3);
        let victim = 4usize;
        let plan = FaultPlan::with_link(5, LinkFaults::none())
            .and(100, victim, NodeFaultKind::Crash)
            .and(2_000, victim, NodeFaultKind::Restart)
            .detect_after(Some(30));
        let mut r = AsyncDibaRun::with_faults(
            p.clone(),
            Graph::ring(30),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        r.run(1_500);
        assert_eq!(r.health()[victim], NodeHealth::Crashed);
        assert_eq!(r.allocation().power(victim), Watts(0.0));
        r.run(10_000);
        assert_eq!(
            r.health()[victim],
            NodeHealth::Alive,
            "restart never booted"
        );
        assert!(r.allocation().power(victim) >= Watts(p.utility(victim).p_min().0));
        assert!(
            r.conservation_drift() < 1e-6,
            "drift {}",
            r.conservation_drift()
        );
        // Back to the full-cluster optimum.
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        assert!(
            r.run_until_within(opt, 0.02, 40_000).is_some(),
            "cluster failed to re-converge after restart"
        );
    }

    #[test]
    fn departure_reabsorbs_budget_immediately() {
        let p = problem(30, 170.0, 3);
        let leaver = 12usize;
        let plan = FaultPlan::none()
            .and(200, leaver, NodeFaultKind::Depart)
            .detect_after(Some(40));
        let mut r = AsyncDibaRun::with_faults(
            p.clone(),
            Graph::ring(30),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        for _ in 0..300 {
            r.step();
            assert!(
                r.conservation_drift() < 1e-6,
                "drift {}",
                r.conservation_drift()
            );
        }
        assert_eq!(r.health()[leaver], NodeHealth::Departed);
        assert_eq!(r.escrow_total(), 0.0, "graceful departure leaves no escrow");
        assert!(!r.partitioned(), "ring minus one node is a path: connected");
        let opt = survivor_optimal(&p, &[leaver]);
        assert!(
            r.run_until_within(opt, 0.02, 40_000).is_some(),
            "survivors failed to absorb the departed budget"
        );
    }

    #[test]
    fn hub_departure_flags_partition() {
        let p = problem(8, 170.0, 3);
        let plan = FaultPlan::none().and(50, 0, NodeFaultKind::Depart);
        let mut r = AsyncDibaRun::with_faults(
            p,
            Graph::star(8),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        r.run(60);
        assert!(r.partitioned(), "losing the star hub must partition");
        // Feasibility still holds per component.
        assert!(r.conservation_drift() < 1e-6);
    }

    #[test]
    fn acceptance_sweep_cell_ten_percent_drop_plus_crash() {
        // The ISSUE acceptance criterion: 10% message drop + one node
        // crash still converges to a feasible allocation with the dead
        // node's budget re-absorbed.
        let p = problem(40, 170.0, 3);
        let victim = 19usize;
        let plan = FaultPlan::with_link(7, lossy_link(0.10))
            .and(300, victim, NodeFaultKind::Crash)
            .detect_after(Some(40));
        let mut r = AsyncDibaRun::with_faults(
            p.clone(),
            Graph::ring_with_chords(40, 3),
            DibaConfig::default(),
            AsyncConfig::default(),
            plan,
        )
        .unwrap();
        let opt = survivor_optimal(&p, &[victim]);
        let rounds = r.run_until_within(opt, 0.03, 60_000);
        assert!(rounds.is_some(), "faulted sweep cell failed to converge");
        assert!(r.total_power() <= p.budget() + Watts(1e-6));
        assert_eq!(r.escrow_total(), 0.0);
        assert!(r.conservation_drift() < 1e-6);
    }
}
