//! Asynchronous DiBA with an unreliable-timing network.
//!
//! The synchronous rounds of [`crate::diba::DibaRun`] are an idealization:
//! in deployment, nodes act on their own clocks (the paper synchronizes via
//! NTP, Section 4.3.1) and messages ride TCP — they are never *lost*, but
//! they arrive late. This module stresses the algorithm under both effects:
//!
//! * **partial activation** — each round, every node acts only with
//!   probability `activation` (a node whose control loop fired late simply
//!   skips the round);
//! * **delayed delivery** — every message is independently delayed by a
//!   geometric number of rounds, so neighbors act on stale residuals and
//!   slack transfers spend time "in flight".
//!
//! The residual invariant becomes an inequality while transfers are in
//! flight: the donated (negative) mass has left the sender but not reached
//! the receiver, so `Σ eᵢ ≥ Σ pᵢ − P` on the nodes — feasibility is
//! preserved *conservatively*, never violated. The tests pin exactly that.

use crate::diba::{node_action, DibaConfig, DibaRun, NodeParams};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::units::Watts;
use dpc_topology::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Network/scheduling imperfections for the asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Probability a node takes its action in a given round, in `(0, 1]`.
    pub activation: f64,
    /// Probability a message is delayed by (at least) one extra round; the
    /// delay is geometric with this parameter, capped at `max_delay`.
    pub delay_prob: f64,
    /// Hard cap on per-message delay, in rounds.
    pub max_delay: usize,
    /// RNG seed (the run is deterministic given the seed).
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            activation: 0.8,
            delay_prob: 0.3,
            max_delay: 5,
            seed: 0,
        }
    }
}

/// An in-flight message: the sender's residual snapshot plus a slack
/// transfer, due at `arrival`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    arrival: usize,
    to: usize,
    from: usize,
    e_snapshot: f64,
    transfer: f64,
}

/// Asynchronous DiBA run over a fixed barrier weight.
///
/// Runs the identical per-node program as the synchronous reference
/// ([`node_action`]); only the scheduling and delivery differ.
#[derive(Debug, Clone)]
pub struct AsyncDibaRun {
    problem: PowerBudgetProblem,
    graph: Graph,
    params: NodeParams,
    net: AsyncConfig,
    rng: StdRng,
    p: Vec<f64>,
    e: Vec<f64>,
    /// Last residual heard from each neighbor: `last_heard[i]` aligned with
    /// `graph.neighbors(i)`.
    last_heard: Vec<Vec<f64>>,
    in_flight: Vec<InFlight>,
    round: usize,
}

impl AsyncDibaRun {
    /// Builds an asynchronous run with the same initialization as the
    /// synchronous reference.
    ///
    /// # Errors
    ///
    /// Propagates [`DibaRun::new`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `activation` is not in `(0, 1]` or `delay_prob` not in
    /// `[0, 1)`.
    pub fn new(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
        net: AsyncConfig,
    ) -> Result<AsyncDibaRun, AlgError> {
        assert!(
            net.activation > 0.0 && net.activation <= 1.0,
            "activation {} not in (0, 1]",
            net.activation
        );
        assert!(
            (0.0..1.0).contains(&net.delay_prob),
            "delay_prob {} not in [0, 1)",
            net.delay_prob
        );
        let reference = DibaRun::new(problem.clone(), graph.clone(), config)?;
        let params = reference.params();
        let states = reference.node_states();
        let p: Vec<f64> = states.iter().map(|s| s.0).collect();
        let e: Vec<f64> = states.iter().map(|s| s.1).collect();
        let last_heard = (0..problem.len())
            .map(|i| graph.neighbors(i).iter().map(|&j| e[j]).collect())
            .collect();
        Ok(AsyncDibaRun {
            problem,
            graph,
            params,
            rng: StdRng::seed_from_u64(net.seed),
            net,
            p,
            e,
            last_heard,
            in_flight: Vec::new(),
            round: 0,
        })
    }

    /// Rounds elapsed.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current allocation.
    pub fn allocation(&self) -> Allocation {
        self.p.iter().map(|&p| Watts(p)).collect()
    }

    /// Current total power.
    pub fn total_power(&self) -> Watts {
        Watts(self.p.iter().sum())
    }

    /// Current total utility.
    pub fn total_utility(&self) -> f64 {
        self.problem
            .utilities()
            .iter()
            .zip(&self.p)
            .map(|(u, &p)| u.value(Watts(p)))
            .sum()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Residual accounting drift: `Σe_nodes + Σ in-flight − (Σp − P)`, which
    /// must stay at exactly zero (mass conservation including the network).
    pub fn conservation_drift(&self) -> f64 {
        let on_nodes: f64 = self.e.iter().sum();
        let flying: f64 = self.in_flight.iter().map(|m| m.transfer).sum();
        let sum_p: f64 = self.p.iter().sum();
        (on_nodes + flying - (sum_p - self.problem.budget().0)).abs()
    }

    /// One asynchronous round: deliver due messages, let a random subset of
    /// nodes act, enqueue their messages with random delays.
    pub fn step(&mut self) {
        self.round += 1;

        // Deliver everything due this round.
        let round = self.round;
        let mut delivered = Vec::new();
        self.in_flight.retain(|m| {
            if m.arrival <= round {
                delivered.push(*m);
                false
            } else {
                true
            }
        });
        for m in delivered {
            self.e[m.to] += m.transfer;
            let slot = self
                .graph
                .neighbors(m.to)
                .iter()
                .position(|&j| j == m.from)
                .expect("message along a graph edge");
            self.last_heard[m.to][slot] = m.e_snapshot;
        }

        // Random subset of nodes act on last-heard state.
        for i in 0..self.p.len() {
            if self.rng.gen_range(0.0..1.0) >= self.net.activation {
                continue;
            }
            let action = node_action(
                self.problem.utility(i),
                self.p[i],
                self.e[i],
                &self.last_heard[i],
                &self.params,
            );
            self.p[i] += action.dp;
            self.e[i] += action.own_residual_delta();
            for (&j, &t) in self.graph.neighbors(i).iter().zip(&action.transfers) {
                let mut delay = 1usize;
                while delay < self.net.max_delay
                    && self.rng.gen_range(0.0..1.0) < self.net.delay_prob
                {
                    delay += 1;
                }
                self.in_flight.push(InFlight {
                    arrival: self.round + delay,
                    to: j,
                    from: i,
                    e_snapshot: self.e[i],
                    transfer: t,
                });
            }
        }
    }

    /// Runs `rounds` asynchronous rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until feasible and within `rel_tol` of `reference_utility`;
    /// returns rounds used.
    pub fn run_until_within(
        &mut self,
        reference_utility: f64,
        rel_tol: f64,
        max_rounds: usize,
    ) -> Option<usize> {
        let start = self.round;
        for _ in 0..max_rounds {
            let feasible = self.total_power() <= self.problem.budget() + Watts(1e-6);
            let gap = (reference_utility - self.total_utility()).abs()
                / reference_utility.abs().max(1e-12);
            if feasible && gap < rel_tol {
                return Some(self.round - start);
            }
            self.step();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, per_server: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(per_server * n as f64)).unwrap()
    }

    fn run(n: usize, net: AsyncConfig) -> (PowerBudgetProblem, AsyncDibaRun) {
        let p = problem(n, 170.0, 3);
        let r = AsyncDibaRun::new(p.clone(), Graph::ring(n), DibaConfig::default(), net).unwrap();
        (p, r)
    }

    #[test]
    fn conservation_holds_with_delays_and_partial_activation() {
        let (_, mut r) = run(40, AsyncConfig::default());
        for _ in 0..500 {
            r.step();
            assert!(
                r.conservation_drift() < 1e-6,
                "drift {}",
                r.conservation_drift()
            );
        }
        // Messages really do spend time in flight.
        assert!(r.in_flight() > 0);
    }

    #[test]
    fn budget_never_violated_despite_network_chaos() {
        let net = AsyncConfig {
            activation: 0.5,
            delay_prob: 0.5,
            max_delay: 8,
            seed: 9,
        };
        let (p, mut r) = run(40, net);
        for _ in 0..800 {
            r.step();
            assert!(r.total_power() <= p.budget() + Watts(1e-6));
        }
    }

    #[test]
    fn still_converges_to_near_optimal() {
        let (p, mut r) = run(60, AsyncConfig::default());
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let rounds = r.run_until_within(opt, 0.015, 40_000);
        assert!(rounds.is_some(), "async run failed to converge");
    }

    #[test]
    fn synchronous_limit_matches_reference_behaviour() {
        // activation 1, no delay beyond the mandatory 1-round latency:
        // behaves like the message-passing prototype (one-round staleness).
        let net = AsyncConfig {
            activation: 1.0,
            delay_prob: 0.0,
            max_delay: 1,
            seed: 1,
        };
        let (p, mut r) = run(30, net);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let rounds = r.run_until_within(opt, 0.01, 30_000).expect("converges");
        // Within small factor of the synchronous reference's budget.
        assert!(rounds < 20_000, "took {rounds}");
    }

    #[test]
    fn degraded_network_slows_but_does_not_break_convergence() {
        let p = problem(40, 170.0, 5);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let fast_net = AsyncConfig {
            activation: 1.0,
            delay_prob: 0.0,
            max_delay: 1,
            seed: 2,
        };
        let slow_net = AsyncConfig {
            activation: 0.4,
            delay_prob: 0.6,
            max_delay: 10,
            seed: 2,
        };
        let mut fast =
            AsyncDibaRun::new(p.clone(), Graph::ring(40), DibaConfig::default(), fast_net).unwrap();
        let mut slow =
            AsyncDibaRun::new(p.clone(), Graph::ring(40), DibaConfig::default(), slow_net).unwrap();
        let rf = fast
            .run_until_within(opt, 0.02, 60_000)
            .expect("fast converges");
        let rs = slow
            .run_until_within(opt, 0.02, 60_000)
            .expect("slow converges");
        assert!(
            rs >= rf,
            "degraded network should not be faster: {rs} vs {rf}"
        );
    }

    #[test]
    #[should_panic(expected = "activation")]
    fn rejects_zero_activation() {
        let p = problem(4, 170.0, 1);
        let net = AsyncConfig {
            activation: 0.0,
            ..Default::default()
        };
        let _ = AsyncDibaRun::new(p, Graph::ring(4), DibaConfig::default(), net);
    }
}
