//! # dpc-alg — power-budget allocation algorithms
//!
//! The solvers for the cluster power-budgeting problem (Eqs. 4.1–4.3):
//!
//! * [`diba`] — the paper's contribution: fully decentralized allocation
//!   over an arbitrary connected communication graph (Algorithm 4);
//! * [`primal_dual`] — the coordinator-based dual decomposition baseline
//!   (Algorithm 3);
//! * [`centralized`] — the exact KKT water-filling oracle (the CVX stand-in);
//! * [`baselines`] — uniform split and the prior-work throughput/W greedy;
//! * [`knapsack`] — the Chapter 3 multiple-choice knapsack DP (Algorithm 2);
//! * [`predictor`] — the Chapter 3 runtime throughput predictors (Table 3.2);
//! * [`message`] — the round-level protocol payload shared by every
//!   execution substrate (threads, simulator, wire runtime);
//! * [`problem`] — the shared problem/allocation types;
//! * [`telemetry`] — round-level recording (residuals, messages, fault
//!   events, shard timings) with JSONL/CSV/Prometheus sinks;
//! * [`exec`] — the deterministic sharded round engine (worker pool,
//!   barriers, chunked reductions, the [`exec::Threads`] /
//!   [`exec::Precision`] policy knobs);
//! * [`fast`] — the `Precision::Fast` kernel tier: SoA curve layout,
//!   4-wide unrolled lanes, precomputed reciprocals, gated by numeric
//!   equivalence instead of byte equality.
//!
//! ```
//! use dpc_alg::{centralized, diba::{DibaConfig, DibaRun}, problem::PowerBudgetProblem};
//! use dpc_models::{units::Watts, workload::ClusterBuilder};
//! use dpc_topology::Graph;
//!
//! # fn main() -> Result<(), dpc_alg::problem::AlgError> {
//! let cluster = ClusterBuilder::new(50).seed(7).build();
//! let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(8_400.0))?;
//! let optimal = problem.total_utility(&centralized::solve(&problem).allocation);
//!
//! let mut run = DibaRun::new(problem, Graph::ring(50), DibaConfig::default())?;
//! run.run_until_within(optimal, 0.01, 5_000).expect("converges on a ring");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod centralized;
pub mod diba;
pub mod diba_async;
pub mod exec;
pub mod fast;
pub mod faults;
pub mod hierarchy;
pub mod knapsack;
pub mod message;
pub mod predictor;
pub mod primal_dual;
pub mod problem;
pub mod telemetry;

pub use problem::{AlgError, Allocation, PowerBudgetProblem};
