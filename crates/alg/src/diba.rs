//! DiBA — fully decentralized power-budget allocation (Algorithm 4).
//!
//! Every node `i` keeps two state variables: its power `pᵢ` and a local
//! estimate `eᵢ` of the global constraint residual, maintained so that
//! `Σ eᵢ = Σ pᵢ − P` holds exactly at all times. Nodes act on *local*
//! information only:
//!
//! * a gradient step on power against the barrier-augmented local utility
//!   `Rᵢ = rᵢ(pᵢ) + η·log(−eᵢ)` — marginal utility pushes power up, the
//!   barrier pushes back as the local slack `|eᵢ|` shrinks;
//! * pairwise slack transfers `ê_{i→j} ≤ 0` to each neighbor (Eq. 4.9),
//!   diffusing slack toward nodes that need it. Transfers cancel pairwise,
//!   so the residual invariant is preserved by construction.
//!
//! At equilibrium the slack estimates equalize and every unpinned node
//! satisfies `rᵢ′(pᵢ) = η/|e|` — the KKT condition of the global problem
//! with price `λ = η/|e|`, so the fixed point is the centralized optimum up
//! to the barrier gap `n·η/λ` (made small by the auto-tuned η).
//!
//! The dissertation's sign convention for the barrier term is
//! typographically inconsistent (see DESIGN.md); this is the
//! mathematically-consistent interior-point form with the behaviour the
//! paper describes: strict feasibility throughout, immediate reaction to
//! budget changes, and local response to local perturbations.

use crate::exec::{chunked_sum, Backend, Engine, Precision, SharedSlice, SpinBarrier, Threads};
use crate::fast::{phase_a_fast, phase_b_fast, FastRoundParams, FastState};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use crate::telemetry::{
    FaultEvent, FaultEventKind, RoundRecord, Telemetry, TelemetryConfig, MAX_TIMED_SHARDS,
};
use dpc_models::units::Watts;
use dpc_topology::Graph;
use std::ops::Range;
use std::time::Instant;

/// Tuning knobs for DiBA. The defaults are calibrated for the paper's
/// cluster scale (hundreds to thousands of nodes, ring-like topologies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DibaConfig {
    /// Barrier weight η; `None` auto-tunes from the problem scale so the
    /// equilibrium leaves ≈0.4 % of the budget as barrier slack.
    pub eta: Option<f64>,
    /// Power gradient step in `(0, 1]` (diagonally preconditioned).
    pub step_power: f64,
    /// Slack diffusion step in `(0, 1)`.
    pub step_transfer: f64,
    /// Fraction of the per-node budget kept as the hard slack margin
    /// (own actions never push `eᵢ` above `−margin`).
    pub margin_frac: f64,
    /// Barrier continuation: η starts at `eta · eta_boost`. A boosted
    /// barrier holds a larger slack reservoir at every node, so slack
    /// differences — and with them the diffusion rate — are proportionally
    /// larger during the initial redistribution. The boost is *halved each
    /// time the redistribution stagnates* at the current stage (path
    /// following), so every stage only re-adjusts locally relative to the
    /// previous one; this keeps convergence rounds — and hence DiBA's
    /// communication time — essentially flat in cluster size.
    pub eta_boost: f64,
    /// Per-round multiplicative backstop decay of the boost, in `(0, 1]`
    /// (guarantees the boost eventually vanishes even without stagnation).
    pub eta_boost_decay: f64,
    /// Worker policy for the round engine: [`Threads::Auto`] (the default)
    /// applies the measured serial↔parallel cutover per problem size and
    /// host, `Threads::Fixed(1)` forces the inline serial path (no threads
    /// spawned). Any policy produces bitwise-identical `(p, e)`
    /// trajectories — see the determinism notes in [`crate::exec`].
    pub threads: Threads,
    /// Fan-out backend: the persistent [`Backend::Pooled`] worker pool (the
    /// default) or spawn-per-batch [`Backend::Scoped`] threads (kept for
    /// benchmarking the pool against). Bitwise-inert like `threads`.
    pub backend: Backend,
    /// Numerical tier of the round kernel: [`Precision::Reference`] (the
    /// default) keeps the bitwise-deterministic scalar kernel;
    /// [`Precision::Fast`] runs the SoA/4-wide kernel of [`crate::fast`],
    /// which is deterministic per input but differs from the reference by
    /// accumulated rounding, bounded by the equivalence knobs below.
    pub precision: Precision,
    /// Numeric-equivalence tolerance ε (watts): how far any node's final
    /// allocation under `Precision::Fast` may sit from the reference
    /// run's. Enforced by the `precision_equivalence` proptest suite and
    /// the `dpc bench --precision fast` equivalence check, not by the
    /// run itself.
    pub equiv_eps_watts: f64,
    /// Numeric-equivalence round slack k: how many rounds the fast tier's
    /// convergence round may differ from the reference tier's.
    pub equiv_rounds: usize,
    /// Round-level recording (off by default — the round loop then skips
    /// telemetry entirely). Recording never perturbs the trajectory.
    pub telemetry: TelemetryConfig,
}

impl DibaConfig {
    /// Checks every knob holds a value the engines can honor, so bad
    /// configurations fail at construction instead of panicking (or
    /// silently misbehaving) rounds later deep inside a run.
    ///
    /// # Errors
    ///
    /// [`AlgError::InvalidConfig`] naming the offending knob: explicit
    /// zero worker counts (`threads = Fixed(0)`), non-finite or
    /// non-positive steps / η, a negative or non-finite margin fraction,
    /// non-finite continuation knobs, or a zero telemetry capacity.
    pub fn validate(&self) -> Result<(), AlgError> {
        let bad = |what: String| Err(AlgError::InvalidConfig { what });
        if self.threads == Threads::Fixed(0) {
            return bad(
                "threads = Fixed(0): the round engine needs at least one worker (use Auto)"
                    .to_string(),
            );
        }
        if !self.step_power.is_finite() || self.step_power <= 0.0 {
            return bad(format!(
                "step_power = {} must be finite and positive",
                self.step_power
            ));
        }
        if !self.step_transfer.is_finite() || self.step_transfer <= 0.0 {
            return bad(format!(
                "step_transfer = {} must be finite and positive",
                self.step_transfer
            ));
        }
        if !self.margin_frac.is_finite() || self.margin_frac < 0.0 {
            return bad(format!(
                "margin_frac = {} must be finite and non-negative",
                self.margin_frac
            ));
        }
        if let Some(eta) = self.eta {
            if !eta.is_finite() || eta <= 0.0 {
                return bad(format!("eta = Some({eta}) must be finite and positive"));
            }
        }
        if !self.eta_boost.is_finite() {
            return bad(format!("eta_boost = {} must be finite", self.eta_boost));
        }
        if !self.eta_boost_decay.is_finite() {
            return bad(format!(
                "eta_boost_decay = {} must be finite",
                self.eta_boost_decay
            ));
        }
        if !self.equiv_eps_watts.is_finite() || self.equiv_eps_watts <= 0.0 {
            return bad(format!(
                "equiv_eps_watts = {} must be finite and positive",
                self.equiv_eps_watts
            ));
        }
        if self.equiv_rounds == 0 {
            return bad(
                "equiv_rounds = 0: the fast tier needs at least one round of \
                 convergence slack"
                    .to_string(),
            );
        }
        self.telemetry.validate()
    }
}

impl Default for DibaConfig {
    fn default() -> Self {
        DibaConfig {
            eta: None,
            step_power: 0.7,
            step_transfer: 1.2,
            margin_frac: 1e-5,
            eta_boost: 30.0,
            eta_boost_decay: 0.995,
            threads: Threads::Auto,
            backend: Backend::Pooled,
            precision: Precision::Reference,
            equiv_eps_watts: 0.05,
            equiv_rounds: 10,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Resolved per-node parameters — what a deployed node actually carries.
/// Shared by the synchronous reference implementation and the
/// message-passing prototype in `dpc-agents` so both run identical math.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Barrier weight η.
    pub eta: f64,
    /// Hard slack margin (watts): own actions keep `e ≤ −margin`.
    pub margin: f64,
    /// Power gradient step.
    pub step_power: f64,
    /// Slack diffusion step.
    pub step_transfer: f64,
}

/// The local action of one DiBA round: a power move and one (non-positive)
/// slack transfer per neighbor, aligned with the neighbor list passed to
/// [`node_action`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAction {
    /// Power change to apply (watts).
    pub dp: f64,
    /// Slack donated to each neighbor (each ≤ 0), in input order.
    pub transfers: Vec<f64>,
}

impl NodeAction {
    /// Total slack sent (≤ 0).
    pub fn sent_total(&self) -> f64 {
        self.transfers.iter().sum()
    }

    /// The node's own residual change: `dp − Σ transfers` (donations raise
    /// the residual; incoming transfers are applied by the caller).
    pub fn own_residual_delta(&self) -> f64 {
        self.dp - self.sent_total()
    }
}

/// Reusable per-node working memory for [`node_action_into`]: the buffers a
/// round would otherwise allocate. One instance per worker thread serves an
/// entire run — the round engine holds them in its persistent scratch, so
/// steady-state rounds perform no heap allocation at all.
#[derive(Debug, Clone, Default)]
pub struct NodeScratch {
    /// Slack donated to each neighbor (each ≤ 0), aligned with the neighbor
    /// order of the most recent call.
    pub transfers: Vec<f64>,
    /// Staging buffer for the neighbors' last-known residuals.
    pub neighbor_e: Vec<f64>,
}

impl NodeScratch {
    /// Scratch pre-sized for nodes of up to `max_degree` neighbors, so no
    /// later call needs to grow the buffers.
    pub fn with_capacity(max_degree: usize) -> NodeScratch {
        NodeScratch {
            transfers: Vec::with_capacity(max_degree),
            neighbor_e: Vec::with_capacity(max_degree),
        }
    }
}

/// The single source of the per-node math, generic over how the neighbors'
/// residuals are fetched: the sharded round engine reads the global `e`
/// array in place (fused — no staging copy), while the message-passing
/// engines pass a staged slice. Monomorphized and inlined per call site, so
/// genericity costs nothing; because every engine runs *this* code over the
/// same values in the same order, they agree bitwise.
///
/// Computes `dp` and writes one transfer per neighbor into `transfers`
/// (`transfers.len() == degree`); `neighbor_e(k)` must yield the residual
/// of the `k`-th neighbor for `k < degree`.
#[inline(always)]
fn node_action_generic<G: Fn(usize) -> f64>(
    u: &dpc_models::QuadraticUtility,
    p: f64,
    e: f64,
    degree: usize,
    neighbor_e: G,
    params: &NodeParams,
    transfers: &mut [f64],
) -> f64 {
    debug_assert_eq!(transfers.len(), degree);
    let inv = 1.0 / e.min(-params.margin);

    // Power gradient of Rᵢ with a diagonal preconditioner (utility
    // curvature + barrier curvature), giving scale-free steps.
    let (_, _, c) = u.coefficients();
    let grad = u.slope(Watts(p)) + params.eta * inv;
    let precond = 2.0 * c.abs() + params.eta * inv * inv;
    let mut dp = params.step_power * grad / precond.max(1e-12);
    // Box projection.
    dp = (p + dp).clamp(u.p_min().0, u.p_max().0) - p;

    // Slack transfers: donate toward neighbors with less slack (consensus
    // diffusion, one-directional per Algorithm 4). The usize→f64 degree
    // conversion is exact, so hoisting it out of the loop is bitwise-inert;
    // the division itself must stay (a precomputed reciprocal would round
    // differently and change the trajectory).
    let degree_f = degree.max(1) as f64;
    let mut sent_total = 0.0;
    for (k, t) in transfers.iter_mut().enumerate() {
        let e_j = neighbor_e(k);
        *t = (params.step_transfer * (e - e_j) / degree_f * 0.5).min(0.0);
        sent_total += *t;
    }

    // Feasibility of the own action: it must keep eᵢ ≤ −margin. Own delta
    // to eᵢ is dp − sent_total (donations raise eᵢ). When the budget is
    // tight, donations to deficit neighbors are *financed by shedding
    // power*: lowering dp creates exactly the slack being handed over,
    // which is how a budget cut propagates through the ring at watts per
    // round instead of stalling at the barrier.
    let bound = -params.margin - e;
    let own_delta = dp - sent_total;
    if own_delta <= bound {
        return dp;
    }
    // Shed power to cover the donations (and any violation), as far as the
    // box allows.
    let dp_needed = bound + sent_total; // dp ≤ this
    let dp_shed = (p + dp.min(dp_needed)).clamp(u.p_min().0, u.p_max().0) - p;
    if dp_shed - sent_total <= bound {
        return dp_shed;
    }
    // Box-limited: scale donations down to what the margin still affords
    // (own_delta = dp − sent ≤ bound requires sent ≥ dp − bound, with all
    // sends non-positive).
    let allowed = dp_shed - bound;
    let scale = if allowed < 0.0 && sent_total < 0.0 {
        (allowed / sent_total).clamp(0.0, 1.0)
    } else {
        0.0
    };
    for t in transfers.iter_mut() {
        *t *= scale;
    }
    dp_shed
}

/// The allocation-free kernel over a staged neighbor-residual slice:
/// computes `dp` and writes one transfer per neighbor into `transfers`
/// (`transfers.len() == neighbor_e.len()`). Thin monomorphization of
/// [`node_action_generic`].
fn node_action_kernel(
    u: &dpc_models::QuadraticUtility,
    p: f64,
    e: f64,
    neighbor_e: &[f64],
    params: &NodeParams,
    transfers: &mut [f64],
) -> f64 {
    node_action_generic(
        u,
        p,
        e,
        neighbor_e.len(),
        |k| neighbor_e[k],
        params,
        transfers,
    )
}

/// Computes one node's DiBA action into reusable scratch buffers and
/// returns `dp`; the per-neighbor transfers are left in
/// `scratch.transfers`. Identical math to [`node_action`] with zero
/// allocations once the scratch has reached the node's degree.
pub fn node_action_into(
    u: &dpc_models::QuadraticUtility,
    p: f64,
    e: f64,
    neighbor_e: &[f64],
    params: &NodeParams,
    scratch: &mut NodeScratch,
) -> f64 {
    scratch.transfers.clear();
    scratch.transfers.resize(neighbor_e.len(), 0.0);
    node_action_kernel(u, p, e, neighbor_e, params, &mut scratch.transfers)
}

/// Computes one node's DiBA action from purely local information: its
/// utility, power `p`, residual estimate `e`, and the last-known residuals
/// of its neighbors.
///
/// This is the entire per-round program of a deployed node (Algorithm 4's
/// step 3): a preconditioned gradient step on the barrier-augmented local
/// utility, one-directional slack diffusion toward needier neighbors, and
/// the feasibility backtracking that finances donations by shedding power.
///
/// Thin allocating wrapper over the scratch-buffer kernel
/// ([`node_action_into`]) for call sites outside the hot round loop.
pub fn node_action(
    u: &dpc_models::QuadraticUtility,
    p: f64,
    e: f64,
    neighbor_e: &[f64],
    params: &NodeParams,
) -> NodeAction {
    let mut transfers = vec![0.0; neighbor_e.len()];
    let dp = node_action_kernel(u, p, e, neighbor_e, params, &mut transfers);
    NodeAction { dp, transfers }
}

/// The control state a round updates after its reduction: everything the
/// continuation schedule needs, extracted so the serial path and worker 0
/// of the parallel path run the *same* update code on the same struct.
#[derive(Debug, Clone, Copy)]
struct RoundCtl {
    params: NodeParams,
    boost: f64,
    boost_decay: f64,
    stage_tol: f64,
    stage_rounds: usize,
    iterations: usize,
    last_max_step: f64,
}

impl RoundCtl {
    /// The parameters in effect for the next round (boosted barrier).
    fn round_params(&self) -> NodeParams {
        NodeParams {
            eta: self.params.eta * self.boost,
            ..self.params
        }
    }

    /// Absorbs a finished round's max-|dp| reduction: advances the round
    /// counter and the barrier continuation (path following — halve the
    /// boost once this stage's redistribution has stalled or run its
    /// scheduled length; the backstop decay guarantees it vanishes).
    fn absorb(&mut self, max_step: f64) {
        self.iterations += 1;
        self.last_max_step = max_step;
        self.stage_rounds += 1;
        if self.boost > 1.0 && (max_step < self.stage_tol || self.stage_rounds >= 25) {
            self.boost = (self.boost * 0.5).max(1.0);
            self.stage_rounds = 0;
        }
        self.boost = (self.boost * self.boost_decay).max(1.0);
    }
}

/// Persistent per-run working memory of the round engine, sized once at
/// construction so steady-state rounds allocate nothing.
#[derive(Debug, Clone)]
struct RoundScratch {
    /// Per-node power move of the round in flight.
    p_hat: Vec<f64>,
    /// Per-directed-slot transfer of the round in flight, CSR-aligned with
    /// the graph's adjacency array.
    transfers: Vec<f64>,
    /// Per-node accumulated residual delta of the fast tier — phase A
    /// materializes `d[i] = Σ(incoming − outgoing)` over the ring
    /// directly instead of buffering transfers; empty under
    /// `Precision::Reference`.
    fast_deltas: Vec<f64>,
    /// Chord-transfer slots of the fast tier (one per directed non-ring
    /// edge, grouped by sender) — the only transfers the fast tier
    /// buffers; empty under `Precision::Reference` or on a pure ring.
    fast_extras: Vec<f64>,
    /// Reverse-slot map: `transfers[rev[s]]` is what the neighbor sent back
    /// over the edge whose outgoing slot is `s`.
    rev: Vec<usize>,
    /// Shard cut points (edge-balanced contiguous node ranges) for the
    /// resolved worker count; `cuts.len() - 1` workers.
    cuts: Vec<usize>,
    /// Per-worker max |dp| of the round in flight.
    worker_max: Vec<f64>,
    /// Per-worker phase-A wall-clock nanoseconds of the round in flight
    /// (only written when timed telemetry is on; always allocated — it is
    /// one word per worker).
    phase_nanos: Vec<u64>,
}

impl RoundScratch {
    fn for_graph(graph: &Graph, workers: usize) -> RoundScratch {
        RoundScratch {
            p_hat: vec![0.0; graph.len()],
            transfers: vec![0.0; graph.flat_neighbors().len()],
            fast_deltas: Vec::new(),
            fast_extras: Vec::new(),
            rev: graph.reverse_slots(),
            cuts: graph.shard_offsets(workers),
            worker_max: vec![0.0; workers],
            phase_nanos: vec![0; workers],
        }
    }
}

/// The strictly feasible start point of a cold run: the uniform allocation
/// backed off toward each box's lower bound by 0.5 %.
fn backed_off_start(problem: &PowerBudgetProblem) -> Vec<f64> {
    let uniform = crate::baselines::uniform(problem);
    problem
        .utilities()
        .iter()
        .zip(uniform.powers())
        .map(|(u, &pw)| {
            let backed = u.p_min().0 + (pw.0 - u.p_min().0) * 0.995;
            backed.clamp(u.p_min().0, u.p_max().0)
        })
        .collect()
}

/// Auto-tuned barrier weight η as a *pure function of the problem*: the
/// equilibrium slack target (0.4 % of the per-node budget) times the mean
/// marginal utility at the canonical cold-start point.
///
/// Purity is what makes warm starting sound: a warm run that re-tunes η
/// after a mutation lands on the *same* barrier weight a cold run on the
/// mutated instance would auto-tune, so both runs share one equilibrium
/// and the warm trajectory converges to the cold answer (the
/// `warm_equivalence` property tests pin this).
pub fn auto_eta(problem: &PowerBudgetProblem) -> f64 {
    let n = problem.len();
    let budget = problem.budget().0;
    let p = backed_off_start(problem);
    let target = 0.004 * (budget / n as f64).abs().max(1.0);
    let mean_slope = problem
        .utilities()
        .iter()
        .zip(&p)
        .map(|(u, &pw)| u.slope(Watts(pw)).max(0.0))
        .sum::<f64>()
        / n as f64;
    target * mean_slope.max(1e-9)
}

/// The hard slack margin for a problem (watts): `margin_frac` of the
/// per-node budget. Pure in the problem, like [`auto_eta`].
fn margin_for(problem: &PowerBudgetProblem, margin_frac: f64) -> f64 {
    (problem.budget().0 / problem.len() as f64).abs().max(1.0) * margin_frac
}

/// The continuation stagnation tolerance for a problem (watts). Pure in
/// the problem, like [`auto_eta`].
fn stage_tol_for(problem: &PowerBudgetProblem) -> f64 {
    0.002 * (problem.budget().0 / problem.len() as f64).abs().max(1.0)
}

/// A running DiBA instance: the synchronous-round reference implementation
/// (the thread-per-node prototype lives in `dpc-agents`).
#[derive(Debug, Clone)]
pub struct DibaRun {
    problem: PowerBudgetProblem,
    graph: Graph,
    params: NodeParams,
    /// The explicit η from the config, when one was given. Warm-start
    /// mutations re-tune η from the mutated problem ([`auto_eta`]) only
    /// when this is `None` — a pinned η stays pinned.
    eta_override: Option<f64>,
    /// The configured margin fraction, kept so warm-start mutations can
    /// re-derive the margin for the mutated problem.
    margin_frac: f64,
    /// Barrier continuation: current multiplicative boost on η (≥ 1).
    boost: f64,
    boost_decay: f64,
    reboost: f64,
    /// Per-round move below which the current continuation stage is
    /// considered stagnant and the boost halves (watts).
    stage_tol: f64,
    /// Rounds spent in the current continuation stage.
    stage_rounds: usize,
    p: Vec<f64>,
    e: Vec<f64>,
    iterations: usize,
    last_max_step: f64,
    engine: Engine,
    scratch: RoundScratch,
    /// Kernel tier of the round engine; `Reference` is bitwise, `Fast`
    /// runs the SoA kernel held in `fast`.
    precision: Precision,
    /// SoA mirror of the curves for the fast kernel; populated exactly
    /// when `precision == Fast`, so the reference path costs one pointer.
    fast: Option<Box<FastState>>,
    /// Round recorder; `None` (the default) skips recording entirely.
    /// Boxed so the disabled path costs one pointer on the run.
    telemetry: Option<Box<Telemetry>>,
}

impl DibaRun {
    /// Initializes DiBA at a slightly-backed-off uniform allocation with the
    /// global slack shared equally (`eᵢ = (Σp − P)/n`), which a real
    /// deployment computes with one gossip round.
    ///
    /// # Errors
    ///
    /// [`AlgError::DimensionMismatch`] when the graph size differs from the
    /// problem size. A disconnected graph is accepted but will only
    /// equalize slack within components.
    pub fn new(
        problem: PowerBudgetProblem,
        graph: Graph,
        config: DibaConfig,
    ) -> Result<DibaRun, AlgError> {
        config.validate()?;
        if graph.len() != problem.len() {
            return Err(AlgError::DimensionMismatch {
                expected: problem.len(),
                got: graph.len(),
            });
        }
        let n = problem.len();
        let budget = problem.budget().0;

        // Strictly feasible start: back the uniform allocation off toward
        // the boxes' lower bounds by 0.5 %.
        let p = backed_off_start(&problem);
        let residual = p.iter().sum::<f64>() - budget;
        let e = vec![residual / n as f64; n];

        let margin = margin_for(&problem, config.margin_frac);
        let eta = config.eta.unwrap_or_else(|| auto_eta(&problem));

        let engine = Engine::with_backend(config.backend, config.threads.resolve(n));
        let mut scratch = RoundScratch::for_graph(&graph, engine.workers_for(n));
        let fast = match config.precision {
            Precision::Reference => None,
            Precision::Fast => Some(Box::new(FastState::new(
                problem.utilities(),
                &graph,
                config.step_transfer,
            ))),
        };
        scratch.fast_deltas = vec![0.0; fast.as_ref().map_or(0, |st| st.len())];
        scratch.fast_extras = vec![0.0; fast.as_ref().map_or(0, |st| st.extras_len())];
        let telemetry = if config.telemetry.enabled {
            let mut t = Telemetry::new(config.telemetry);
            t.set_shard_work(graph.shard_work(&scratch.cuts));
            Some(Box::new(t))
        } else {
            None
        };
        let stage_tol = stage_tol_for(&problem);
        Ok(DibaRun {
            problem,
            graph,
            params: NodeParams {
                eta,
                margin,
                step_power: config.step_power,
                step_transfer: config.step_transfer,
            },
            eta_override: config.eta,
            margin_frac: config.margin_frac,
            boost: config.eta_boost.max(1.0),
            boost_decay: config.eta_boost_decay.clamp(0.0, 1.0),
            reboost: config.eta_boost.max(1.0),
            stage_tol,
            stage_rounds: 0,
            p,
            e,
            iterations: 0,
            last_max_step: f64::INFINITY,
            engine,
            scratch,
            precision: config.precision,
            fast,
            telemetry,
        })
    }

    /// Switches the kernel tier. `Reference` restores the bitwise scalar
    /// kernel (and drops the SoA mirror); `Fast` builds the SoA state and
    /// runs the vectorized kernel from the next round on. Switching mid-run
    /// is sound — both tiers maintain the same invariants over the same
    /// `(p, e)` state — but the trajectory from here on follows the new
    /// tier's rounding.
    pub fn set_precision(&mut self, precision: Precision) {
        if precision == self.precision {
            return;
        }
        self.precision = precision;
        self.fast = match precision {
            Precision::Reference => None,
            Precision::Fast => Some(Box::new(FastState::new(
                self.problem.utilities(),
                &self.graph,
                self.params.step_transfer,
            ))),
        };
        self.sync_fast_scratch();
    }

    /// The kernel tier in effect.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Re-targets the round engine at a different worker policy. The
    /// trajectory is unaffected: every policy produces bitwise-identical
    /// rounds. When the resolved count is unchanged the existing engine
    /// (and its parked pool threads) is kept.
    pub fn set_threads(&mut self, threads: Threads) {
        let workers = threads.resolve(self.p.len());
        if workers != self.engine.workers() {
            self.engine = Engine::with_backend(self.engine.backend(), workers);
        }
        if workers != self.scratch.cuts.len() - 1 {
            self.scratch = RoundScratch::for_graph(&self.graph, workers);
            self.sync_fast_scratch();
            if let Some(t) = self.telemetry.as_mut() {
                t.set_shard_work(self.graph.shard_work(&self.scratch.cuts));
            }
        }
    }

    /// Re-sizes the fast-tier delta and extras buffers to match the
    /// current kernel tier (empty under `Reference`; one slot per node
    /// and per directed chord edge otherwise).
    fn sync_fast_scratch(&mut self) {
        let len = self.fast.as_ref().map_or(0, |st| st.len());
        if self.scratch.fast_deltas.len() != len {
            self.scratch.fast_deltas = vec![0.0; len];
        }
        let xlen = self.fast.as_ref().map_or(0, |st| st.extras_len());
        if self.scratch.fast_extras.len() != xlen {
            self.scratch.fast_extras = vec![0.0; xlen];
        }
    }

    /// The round recorder, when telemetry is enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Attaches (or, with a disabled config, detaches) a fresh round
    /// recorder. Recording starts from the next round; the trajectory is
    /// unaffected either way.
    pub fn set_telemetry(&mut self, config: TelemetryConfig) {
        if config.enabled {
            let mut t = Telemetry::new(config);
            t.set_shard_work(self.graph.shard_work(&self.scratch.cuts));
            self.telemetry = Some(Box::new(t));
        } else {
            self.telemetry = None;
        }
    }

    /// The resolved worker count of the round engine.
    pub fn threads(&self) -> usize {
        self.engine.workers_for(self.p.len())
    }

    /// The barrier weight in effect (auto-tuned unless overridden).
    pub fn eta(&self) -> f64 {
        self.params.eta
    }

    /// The resolved per-node parameters (for deploying agents).
    pub fn params(&self) -> NodeParams {
        self.params
    }

    /// Per-node state snapshot `(p, e)` for deploying the message-passing
    /// prototype from the same initial conditions.
    pub fn node_states(&self) -> Vec<(f64, f64)> {
        self.p.iter().copied().zip(self.e.iter().copied()).collect()
    }

    /// Rounds executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Current power vector as an allocation.
    pub fn allocation(&self) -> Allocation {
        self.p.iter().map(|&p| Watts(p)).collect()
    }

    /// Current total power.
    pub fn total_power(&self) -> Watts {
        Watts(self.p.iter().sum())
    }

    /// Current total utility.
    pub fn total_utility(&self) -> f64 {
        self.problem
            .utilities()
            .iter()
            .zip(&self.p)
            .map(|(u, &p)| u.value(Watts(p)))
            .sum()
    }

    /// The local residual estimates `eᵢ` (watts).
    pub fn residuals(&self) -> &[f64] {
        &self.e
    }

    /// Largest per-node power move of the most recent round (watts);
    /// `+∞` before the first round.
    pub fn last_max_step(&self) -> f64 {
        self.last_max_step
    }

    /// The problem being solved.
    pub fn problem(&self) -> &PowerBudgetProblem {
        &self.problem
    }

    /// One synchronous round: every node computes its action from the
    /// previous round's neighbor state, then all messages are delivered.
    pub fn step(&mut self) {
        self.step_batch(1);
    }

    /// Runs `rounds` synchronous rounds. Alias of [`DibaRun::step_many`].
    pub fn run(&mut self, rounds: usize) {
        self.step_batch(rounds);
    }

    /// Runs `rounds` synchronous rounds as one batch: one engine dispatch,
    /// with convergence bookkeeping and telemetry flushed at round
    /// boundaries *inside* the batch (worker 0, between barriers) rather
    /// than returning to the caller each round. The recorded
    /// [`RoundRecord`] stream and the `(p, e)` trajectory are bitwise
    /// identical to `rounds` single [`DibaRun::step`] calls — batching
    /// only removes dispatch overhead.
    pub fn step_many(&mut self, rounds: usize) {
        self.step_batch(rounds);
    }

    /// The round engine. Each round is receiver-centric and two-phase:
    ///
    /// * **Phase A** — every node computes its kernel from the previous
    ///   round's state, writing its power move into `p_hat[i]` and, on
    ///   the reference tier, its final (backtracked) per-neighbor
    ///   transfers into its CSR-aligned `transfers` slots; the fast tier
    ///   materializes the already-folded residual delta `d[i]` instead
    ///   (transfers are pure functions of sealed state, so both edge
    ///   endpoints recompute them bitwise rather than buffering them).
    /// * **Phase B** — every node folds its residual delta in a fixed
    ///   order — `Σ (incoming − outgoing)` via the reverse-slot map
    ///   (reference) or the materialized `d[i]` (fast) — and applies
    ///   `p[i] += p̂ᵢ`, `e[i] += p̂ᵢ + d`.
    ///
    /// Every array element is written by exactly one node in a fixed
    /// fold order, so the trajectory is a pure function of the previous
    /// state: any worker count (including the inline serial path, which
    /// runs the same phase functions over the full range) produces
    /// bitwise-identical `(p, e)`. This is stronger than merging per-worker
    /// accumulators in worker order, which is only deterministic per worker
    /// count — see DESIGN.md, "Performance engineering".
    fn step_batch(&mut self, rounds: usize) {
        if rounds == 0 {
            return;
        }
        let workers = self.scratch.cuts.len() - 1;
        let n = self.p.len();
        // Decided once per batch: a disabled recorder costs the hot loop
        // exactly this branch (and nothing per round).
        let tel_on = self.telemetry.is_some();
        let time_on = self.telemetry.as_ref().is_some_and(|t| t.config().timings);
        let mut ctl = RoundCtl {
            params: self.params,
            boost: self.boost,
            boost_decay: self.boost_decay,
            stage_tol: self.stage_tol,
            stage_rounds: self.stage_rounds,
            iterations: self.iterations,
            last_max_step: self.last_max_step,
        };

        {
            let problem = &self.problem;
            let graph = &self.graph;
            // Kernel tier, hoisted: `None` runs the bitwise reference
            // kernel, `Some` the SoA fast kernel — one branch per round
            // per worker, nothing per node.
            let fast = self.fast.as_deref();
            let rev = &self.scratch.rev;
            let cuts = &self.scratch.cuts;
            let p = SharedSlice::new(&mut self.p);
            let e = SharedSlice::new(&mut self.e);
            let p_hat = SharedSlice::new(&mut self.scratch.p_hat);
            let transfers = SharedSlice::new(&mut self.scratch.transfers);
            let fast_deltas = SharedSlice::new(&mut self.scratch.fast_deltas);
            let fast_extras = SharedSlice::new(&mut self.scratch.fast_extras);
            let worker_max = SharedSlice::new(&mut self.scratch.worker_max);
            let ctl_cell = SharedSlice::new(std::slice::from_mut(&mut ctl));
            let nanos = SharedSlice::new(&mut self.scratch.phase_nanos);
            let tel_cell = SharedSlice::new(std::slice::from_mut(&mut self.telemetry));
            let budget = problem.budget().0;
            let msgs_per_round = graph.flat_neighbors().len() as u64;
            let barrier = SpinBarrier::new(workers);

            self.engine.run_workers(workers, |w| {
                let range = cuts[w]..cuts[w + 1];
                for _ in 0..rounds {
                    // Control state is stable here: worker 0's update last
                    // round was sealed by the round-end barrier.
                    // SAFETY: read-only access between barriers.
                    let rp = unsafe { ctl_cell.slice(0..1) }[0].round_params();
                    let t0 = if time_on { Some(Instant::now()) } else { None };
                    let local_max = match fast {
                        None => phase_a(
                            problem,
                            graph,
                            &rp,
                            &p,
                            &e,
                            range.clone(),
                            &p_hat,
                            &transfers,
                        ),
                        Some(st) => {
                            phase_a_fast(
                                st,
                                &FastRoundParams {
                                    eta: rp.eta,
                                    margin: rp.margin,
                                    step_power: rp.step_power,
                                },
                                &p,
                                &e,
                                range.clone(),
                                &p_hat,
                                &fast_deltas,
                                &fast_extras,
                            );
                            // The fast tier folds max |dp| in phase B
                            // (which streams p_hat anyway).
                            0.0
                        }
                    };
                    if let Some(t0) = t0 {
                        // SAFETY: slot w is ours alone.
                        unsafe { nanos.write(w, t0.elapsed().as_nanos() as u64) };
                    }
                    barrier.wait(); // all transfers + p_hat written
                    let local_max = match fast {
                        None => {
                            phase_b(graph, rev, range.clone(), &p, &e, &p_hat, &transfers);
                            local_max
                        }
                        Some(st) => phase_b_fast(
                            st,
                            range.clone(),
                            &p,
                            &e,
                            &p_hat,
                            &fast_deltas,
                            &fast_extras,
                        ),
                    };
                    // SAFETY: slot w is ours alone; worker 0 only folds the
                    // maxima after the next barrier seals them.
                    unsafe { worker_max.write(w, local_max) };
                    barrier.wait(); // all (p, e) updated, worker maxima in
                    if w == 0 {
                        // f64::max is exactly associative on these NaN-free
                        // values, so folding per-worker maxima in any
                        // grouping reproduces the serial max bitwise.
                        let mut max_step = 0.0_f64;
                        for k in 0..workers {
                            // SAFETY: all writes sealed by the barrier.
                            max_step = max_step.max(unsafe { worker_max.read(k) });
                        }
                        // SAFETY: only worker 0 touches ctl between barriers.
                        let ctl_now = &mut (unsafe { ctl_cell.slice_mut(0..1) })[0];
                        ctl_now.absorb(max_step);
                        if tel_on {
                            // SAFETY: only worker 0 touches the recorder
                            // between barriers; all phase-B writes (and the
                            // per-worker timing slots) are sealed by the
                            // barrier above. Worker 0 computes every
                            // aggregate serially over the *full* arrays, so
                            // the record — like the trajectory — is
                            // identical for every worker count.
                            let tel = unsafe { &mut tel_cell.slice_mut(0..1)[0] };
                            if let Some(tel) = tel.as_mut() {
                                let p_all = unsafe { p.slice(0..n) };
                                let e_all = unsafe { e.slice(0..n) };
                                let mut max_abs_e = 0.0_f64;
                                let mut norm2 = 0.0_f64;
                                for (&pi, &ei) in p_all.iter().zip(e_all) {
                                    max_abs_e = max_abs_e.max(ei.abs());
                                    norm2 += pi * pi;
                                }
                                let mut shard_nanos = [0u64; MAX_TIMED_SHARDS];
                                if time_on {
                                    for k in 0..workers {
                                        let slot = k.min(MAX_TIMED_SHARDS - 1);
                                        // SAFETY: sealed by the barrier.
                                        shard_nanos[slot] += unsafe { nanos.read(k) };
                                    }
                                }
                                tel.record_round(RoundRecord {
                                    round: ctl_now.iterations as u64,
                                    budget,
                                    sum_p: chunked_sum(p_all),
                                    norm2_p: norm2.sqrt(),
                                    sum_e: chunked_sum(e_all),
                                    max_abs_e,
                                    max_step,
                                    msgs_sent: msgs_per_round,
                                    live: n as u64,
                                    workers: workers as u32,
                                    shard_nanos,
                                    ..RoundRecord::default()
                                });
                            }
                        }
                    }
                    barrier.wait(); // ctl update sealed for the next round
                }
            });
        }

        self.boost = ctl.boost;
        self.stage_rounds = ctl.stage_rounds;
        self.iterations = ctl.iterations;
        self.last_max_step = ctl.last_max_step;
    }

    /// Runs until the utility is within `rel_tol` of `reference_utility`
    /// while feasible (the paper's 99 % criterion, Eq. 4.11). Returns the
    /// number of rounds used, or `None` when `max_rounds` is exhausted.
    ///
    /// The criterion is tested before the first step and after every step
    /// (including the last), so at most `max_rounds` rounds run and a
    /// return of `Some(r)` means exactly `r` rounds were executed by this
    /// call.
    pub fn run_until_within(
        &mut self,
        reference_utility: f64,
        rel_tol: f64,
        max_rounds: usize,
    ) -> Option<usize> {
        let start = self.iterations;
        for round in 0..=max_rounds {
            if self.is_within(reference_utility, rel_tol) {
                return Some(self.iterations - start);
            }
            if round < max_rounds {
                self.step();
            }
        }
        None
    }

    fn is_within(&self, reference_utility: f64, rel_tol: f64) -> bool {
        let feasible = self.total_power() <= self.problem.budget() + Watts(1e-6);
        let gap =
            (reference_utility - self.total_utility()).abs() / reference_utility.abs().max(1e-12);
        feasible && gap < rel_tol
    }

    /// Runs until the largest per-node power move stays below `tol_watts`
    /// for `stable_rounds` consecutive rounds (oracle-free convergence, used
    /// by the dynamic experiments). Returns rounds used or `None`.
    pub fn run_to_rest(
        &mut self,
        tol_watts: f64,
        stable_rounds: usize,
        max_rounds: usize,
    ) -> Option<usize> {
        let start = self.iterations;
        let mut stable = 0usize;
        for _ in 0..max_rounds {
            self.step();
            if self.last_max_step < tol_watts {
                stable += 1;
                if stable >= stable_rounds {
                    return Some(self.iterations - start);
                }
            } else {
                stable = 0;
            }
        }
        None
    }

    /// Re-derives η, the slack margin, and the stagnation tolerance from
    /// the (mutated) problem, exactly as a cold run on that problem would.
    /// An explicit `eta` from the config stays pinned.
    fn retune(&mut self) {
        self.params.eta = self.eta_override.unwrap_or_else(|| auto_eta(&self.problem));
        self.params.margin = margin_for(&self.problem, self.margin_frac);
        self.stage_tol = stage_tol_for(&self.problem);
    }

    /// Announces a new total budget `P′`. Each node shifts its residual by
    /// `(P − P′)/n`, which keeps `Σe = Σp − P′` exact; the barrier then
    /// drives the power response (sharp drop on a cut, gradual fill on a
    /// raise), reproducing the step responses of Figs. 4.5/4.6.
    ///
    /// This is a *warm-start* entry point: power and residual state carry
    /// over, η/margin are re-tuned to what a cold run on the new budget
    /// would use, and the barrier continuation is re-armed *in proportion
    /// to the event magnitude* — a budget move of ≥ 5 % re-arms the full
    /// continuation (the redistribution really is global), while a small
    /// trim re-arms only a fraction of it, so the run re-settles in far
    /// fewer rounds than a cold start (see `BENCH_dynamic.json`).
    ///
    /// # Errors
    ///
    /// [`AlgError::InfeasibleBudget`] when `P′` cannot cover idle power.
    /// The run is unchanged on error.
    pub fn set_budget(&mut self, budget: Watts) -> Result<(), AlgError> {
        let old = self.problem.budget();
        self.problem = self.problem.with_budget(budget)?;
        let shift = (old.0 - budget.0) / self.p.len() as f64;
        for e in &mut self.e {
            *e += shift;
        }
        self.retune();
        // Re-arm the barrier continuation proportionally to the event:
        // the new budget needs another redistribution phase, but only a
        // large move needs the full cold-start continuation ladder.
        let rel = ((budget.0 - old.0).abs() / old.0.abs().max(1.0)).min(1.0);
        let target = if rel >= 0.05 {
            self.reboost
        } else {
            self.reboost.powf(rel / 0.05)
        };
        self.boost = self.boost.max(target);
        self.stage_rounds = 0;
        let round = self.iterations as u64;
        self.record_event(FaultEvent {
            round,
            node: 0,
            kind: FaultEventKind::Budget,
            mass: budget.0 - old.0,
        });
        Ok(())
    }

    /// Replaces node `i`'s utility (a workload change). The power is
    /// clamped into the new box and the residual adjusted by the clamp so
    /// the invariant is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range. [`DibaRun::replace_utilities`] is the
    /// typed-error (and batched) form.
    pub fn replace_utility(&mut self, i: usize, utility: dpc_models::QuadraticUtility) {
        assert!(i < self.p.len(), "node {i} out of range");
        self.replace_utilities(&[(i, utility)])
            .expect("index checked above");
    }

    /// Replaces several nodes' utilities at once (VM churn, workload phase
    /// changes) — the warm-start entry point of the replay driver. For each
    /// `(i, u)` the node's power is clamped into the new box and its
    /// residual adjusted by exactly the clamp, so `Σe = Σp − P` is
    /// preserved by construction; the rest of the cluster's state carries
    /// over untouched. η/margin are re-tuned to what a cold run on the
    /// mutated instance would auto-tune (unless η was pinned in the
    /// config), and a mild continuation phase (√ of the full boost) is
    /// re-armed so slack can flow toward or away from the changed nodes.
    ///
    /// When the same node appears more than once, the last entry wins.
    ///
    /// # Errors
    ///
    /// [`AlgError::UnknownNode`] naming the first out-of-range index; the
    /// run is unchanged on error.
    pub fn replace_utilities(
        &mut self,
        changes: &[(usize, dpc_models::QuadraticUtility)],
    ) -> Result<(), AlgError> {
        let n = self.p.len();
        if let Some(&(bad, _)) = changes.iter().find(|(i, _)| *i >= n) {
            return Err(AlgError::UnknownNode {
                node: bad,
                nodes: n,
            });
        }
        if changes.is_empty() {
            return Ok(());
        }
        let mut utilities = self.problem.utilities().to_vec();
        for (i, u) in changes {
            utilities[*i] = *u;
        }
        let budget = self.problem.budget();
        self.problem = PowerBudgetProblem::new(utilities, budget)
            .expect("replacing utilities keeps the problem non-empty");
        let round = self.iterations as u64;
        for &(i, _) in changes {
            let u = self.problem.utility(i);
            if let Some(fast) = self.fast.as_mut() {
                fast.replace_utility(i, u);
            }
            let clamped = self.p[i].clamp(u.p_min().0, u.p_max().0);
            let clamp_delta = clamped - self.p[i];
            self.e[i] += clamp_delta;
            self.p[i] = clamped;
            self.record_event(FaultEvent {
                round,
                node: i,
                kind: FaultEventKind::Workload,
                mass: clamp_delta,
            });
        }
        self.retune();
        // A local change re-arms a mild continuation phase so slack can
        // flow toward (or away from) the changed nodes quickly.
        self.boost = self.boost.max(self.reboost.sqrt());
        self.stage_rounds = 0;
        Ok(())
    }

    /// Appends a discrete event marker to the attached round recorder
    /// (no-op when telemetry is off). Like all recording, this never
    /// perturbs the trajectory — the replay driver uses it to mark
    /// re-convergence boundaries in the JSONL stream.
    pub fn record_event(&mut self, event: FaultEvent) {
        if let Some(t) = self.telemetry.as_mut() {
            t.record_event(event);
        }
    }

    /// Verifies the residual invariant `Σe = Σp − P` (watts of drift).
    pub fn invariant_drift(&self) -> f64 {
        let sum_e: f64 = self.e.iter().sum();
        let sum_p: f64 = self.p.iter().sum();
        (sum_e - (sum_p - self.problem.budget().0)).abs()
    }
}

/// Phase A of a round over one shard: kernel every node in `range` against
/// the previous round's state, writing `p_hat[i]` and the node's own
/// CSR-aligned `transfers` slots. Returns the shard's max `|dp|`.
///
/// Fused: the kernel reads each neighbor's residual straight out of the
/// global `e` array through its CSR row (split-slice, no bounds checks in
/// the hot loop) instead of staging a per-node copy first — one pass over
/// the shard, no scratch traffic. Reading the same `f64`s from a different
/// place is bitwise-inert, so the fusion cannot move the trajectory.
#[allow(clippy::too_many_arguments)] // the shard worker's full working set
fn phase_a(
    problem: &PowerBudgetProblem,
    graph: &Graph,
    rp: &NodeParams,
    p: &SharedSlice<'_, f64>,
    e: &SharedSlice<'_, f64>,
    range: Range<usize>,
    p_hat: &SharedSlice<'_, f64>,
    transfers: &SharedSlice<'_, f64>,
) -> f64 {
    let offsets = graph.offsets();
    let flat = graph.flat_neighbors();
    let mut local_max = 0.0_f64;
    for i in range {
        let (lo, hi) = (offsets[i], offsets[i + 1]);
        let row = &flat[lo..hi];
        // SAFETY: element i is in this worker's own shard.
        let (pi, ei) = unsafe { (p.read(i), e.read(i)) };
        // SAFETY: slots lo..hi belong to node i alone (CSR rows are
        // disjoint) and i is in this worker's shard.
        let out = unsafe { transfers.slice_mut(lo..hi) };
        let dp = node_action_generic(
            problem.utility(i),
            pi,
            ei,
            row.len(),
            // SAFETY: k < row.len() by the kernel's loop bound; nobody
            // writes `e` during phase A — the previous round's writes are
            // sealed by its round-end barrier.
            |k| unsafe { e.read(*row.get_unchecked(k)) },
            rp,
            out,
        );
        // SAFETY: element i is in this worker's own shard.
        unsafe { p_hat.write(i, dp) };
        local_max = local_max.max(dp.abs());
    }
    local_max
}

/// Phase B of a round over one shard: fold each node's residual delta from
/// its own slot range in ascending order and apply the round's state
/// update. Runs strictly after a barrier seals every phase-A write.
fn phase_b(
    graph: &Graph,
    rev: &[usize],
    range: Range<usize>,
    p: &SharedSlice<'_, f64>,
    e: &SharedSlice<'_, f64>,
    p_hat: &SharedSlice<'_, f64>,
    transfers: &SharedSlice<'_, f64>,
) {
    let offsets = graph.offsets();
    for i in range {
        let (lo, hi) = (offsets[i], offsets[i + 1]);
        let mut d = 0.0_f64;
        for (s, &r) in rev[lo..hi].iter().enumerate().map(|(k, r)| (lo + k, r)) {
            // SAFETY: all transfer slots were written in phase A and are
            // read-only now; incoming value sits at the reverse slot.
            d += unsafe { transfers.read(r) - transfers.read(s) };
        }
        // SAFETY: element i is in this worker's own shard; `e[i]` is not
        // read by any other worker until the round-end barrier.
        unsafe {
            let dp = p_hat.read(i);
            p.write(i, p.read(i) + dp);
            e.write(i, e.read(i) + dp + d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    fn run_on_ring(n: usize, budget: f64, seed: u64) -> (PowerBudgetProblem, DibaRun) {
        let p = problem(n, budget, seed);
        let run = DibaRun::new(p.clone(), Graph::ring(n), DibaConfig::default()).unwrap();
        (p, run)
    }

    #[test]
    fn threads_zero_is_a_typed_error_not_a_panic() {
        // Regression (satellite bugfix): an explicit zero worker count used
        // to ride unvalidated toward the sharding layer; it must surface as
        // a typed error at construction.
        let p = problem(10, 1700.0, 1);
        let config = DibaConfig {
            threads: Threads::Fixed(0),
            ..DibaConfig::default()
        };
        let err = DibaRun::new(p, Graph::ring(10), config).unwrap_err();
        assert!(matches!(err, AlgError::InvalidConfig { .. }), "{err:?}");
        assert!(err.to_string().contains("threads"), "{err}");
    }

    #[test]
    fn non_finite_knobs_are_typed_errors() {
        for config in [
            DibaConfig {
                step_power: f64::NAN,
                ..DibaConfig::default()
            },
            DibaConfig {
                step_transfer: 0.0,
                ..DibaConfig::default()
            },
            DibaConfig {
                margin_frac: -1.0,
                ..DibaConfig::default()
            },
            DibaConfig {
                eta: Some(f64::INFINITY),
                ..DibaConfig::default()
            },
            DibaConfig {
                eta_boost: f64::NAN,
                ..DibaConfig::default()
            },
            DibaConfig {
                equiv_eps_watts: f64::NAN,
                ..DibaConfig::default()
            },
            DibaConfig {
                equiv_eps_watts: -0.5,
                ..DibaConfig::default()
            },
            DibaConfig {
                equiv_rounds: 0,
                ..DibaConfig::default()
            },
            DibaConfig {
                telemetry: crate::telemetry::TelemetryConfig {
                    enabled: true,
                    capacity: 0,
                    timings: false,
                },
                ..DibaConfig::default()
            },
        ] {
            let p = problem(4, 700.0, 1);
            let err = DibaRun::new(p, Graph::ring(4), config).unwrap_err();
            assert!(matches!(err, AlgError::InvalidConfig { .. }), "{config:?}");
        }
        assert!(DibaConfig::default().validate().is_ok());
    }

    #[test]
    fn telemetry_records_the_run_it_watches() {
        use crate::telemetry::TelemetryConfig;
        let p = problem(30, 5_100.0, 11);
        let config = DibaConfig {
            telemetry: TelemetryConfig::on(),
            ..DibaConfig::default()
        };
        let mut run = DibaRun::new(p, Graph::ring(30), config).unwrap();
        run.run(40);
        let tel = run.telemetry().expect("recorder attached");
        assert_eq!(tel.rounds_recorded(), 40);
        let last = tel.latest().expect("recorded");
        assert_eq!(last.round, 40);
        // The record mirrors the run's own aggregates exactly.
        assert_eq!(last.sum_p, {
            let powers: Vec<f64> = run.allocation().powers().iter().map(|w| w.0).collect();
            crate::exec::chunked_sum(&powers)
        });
        assert_eq!(last.max_step, run.last_max_step());
        assert!(last.conservation_drift() < 1e-6);
        assert_eq!(last.msgs_sent, 60); // one per directed ring edge
                                        // Sharding metadata is attached; timings stay zero unless opted in.
        assert!(!tel.shard_work().is_empty());
        assert!(last.shard_nanos.iter().all(|&ns| ns == 0));
    }

    #[test]
    fn fast_tier_converges_feasibly_and_conserves() {
        let p = problem(100, 16_600.0, 3);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let config = DibaConfig {
            precision: Precision::Fast,
            ..DibaConfig::default()
        };
        let mut run = DibaRun::new(p.clone(), Graph::ring(100), config).unwrap();
        assert_eq!(run.precision(), Precision::Fast);
        let rounds = run.run_until_within(opt, 0.01, 5_000);
        assert!(rounds.is_some(), "fast tier never converged");
        assert!(run.total_power() <= p.budget() + Watts(1e-6));
        assert!(run.invariant_drift() < 1e-6, "fast tier leaks Σe");
        for (u, &pw) in p.utilities().iter().zip(run.allocation().powers()) {
            assert!(pw >= u.p_min() - Watts(1e-9) && pw <= u.p_max() + Watts(1e-9));
        }
    }

    #[test]
    fn set_precision_switches_tier_mid_run() {
        let (p, mut run) = run_on_ring(60, 10_000.0, 2);
        run.run(50);
        run.set_precision(Precision::Fast);
        assert_eq!(run.precision(), Precision::Fast);
        run.run(200);
        assert!(run.total_power() <= p.budget() + Watts(1e-6));
        assert!(run.invariant_drift() < 1e-6);
        run.set_precision(Precision::Reference);
        assert_eq!(run.precision(), Precision::Reference);
        run.run(50);
        assert!(run.invariant_drift() < 1e-6);
    }

    #[test]
    fn fast_tier_tracks_workload_changes() {
        // `replace_utility` must re-mirror the SoA row, or the fast
        // kernel keeps optimizing the stale curve.
        use dpc_models::throughput::CurveParams;
        let config = DibaConfig {
            precision: Precision::Fast,
            ..DibaConfig::default()
        };
        let p = problem(40, 6_800.0, 10);
        let mut run = DibaRun::new(p, Graph::ring(40), config).unwrap();
        run.run(300);
        let u = *run.problem().utility(20);
        let steep = CurveParams::for_memory_boundedness(0.0).utility(u.p_min(), u.p_max());
        run.replace_utility(20, steep);
        run.run(400);
        // The steepest curve in the cluster should now hold above-average
        // power; with a stale mirror it would sit where the old curve did.
        let total = run.total_power().0;
        let mean = total / 40.0;
        assert!(
            run.allocation().power(20).0 > mean,
            "changed node not re-optimized: {} vs mean {}",
            run.allocation().power(20).0,
            mean
        );
        assert!(run.invariant_drift() < 1e-6);
    }

    #[test]
    fn rejects_mismatched_graph() {
        let p = problem(10, 1700.0, 1);
        let err = DibaRun::new(p, Graph::ring(5), DibaConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            AlgError::DimensionMismatch {
                expected: 10,
                got: 5
            }
        ));
    }

    #[test]
    fn stays_feasible_every_round() {
        let (p, mut run) = run_on_ring(60, 10_000.0, 2);
        for _ in 0..300 {
            run.step();
            assert!(
                run.total_power() <= p.budget() + Watts(1e-6),
                "budget violated"
            );
            assert!(run.invariant_drift() < 1e-6, "invariant drifted");
            for (u, &pw) in p.utilities().iter().zip(run.allocation().powers()) {
                assert!(pw >= u.p_min() - Watts(1e-9) && pw <= u.p_max() + Watts(1e-9));
            }
        }
    }

    #[test]
    fn converges_to_99_percent_of_oracle_on_a_ring() {
        let (p, mut run) = run_on_ring(100, 16_600.0, 3);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let rounds = run.run_until_within(opt, 0.01, 5_000);
        assert!(rounds.is_some(), "no convergence in 5000 rounds");
        let rounds = rounds.unwrap();
        assert!(rounds < 2_000, "too slow: {rounds} rounds");
    }

    #[test]
    fn run_until_within_counts_rounds_exactly() {
        // Regression: the convergence check used to run twice per round,
        // so the returned count could disagree with the rounds actually
        // stepped. Pin the exact accounting from three angles.
        let (p, mut run) = run_on_ring(100, 16_600.0, 3);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let r = run.run_until_within(opt, 0.01, 5_000).expect("converges");
        assert_eq!(
            run.iterations(),
            r,
            "iteration counter disagrees with the return value"
        );

        // A run that already satisfies the criterion reports zero rounds
        // and steps nothing.
        let before = run.iterations();
        assert_eq!(run.run_until_within(opt, 0.01, 5_000), Some(0));
        assert_eq!(run.iterations(), before);

        // A twin run capped one round short of the known answer fails,
        // and executes exactly the cap.
        let (_, mut twin) = run_on_ring(100, 16_600.0, 3);
        assert_eq!(twin.run_until_within(opt, 0.01, r - 1), None);
        assert_eq!(twin.iterations(), r - 1);
        // One more round is precisely what it takes.
        assert_eq!(twin.run_until_within(opt, 0.01, 1), Some(1));
        assert_eq!(twin.iterations(), r);
    }

    #[test]
    fn beats_uniform_at_tight_budgets() {
        let (p, mut run) = run_on_ring(100, 16_600.0, 4);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        run.run_until_within(opt, 0.01, 5_000).expect("converges");
        let uniform_util = p.total_utility(&crate::baselines::uniform(&p));
        assert!(run.total_utility() > uniform_util, "DiBA must beat uniform");
    }

    #[test]
    fn budget_drop_is_respected_quickly() {
        let (_, mut run) = run_on_ring(50, 9_500.0, 5);
        run.run(400);
        run.set_budget(Watts(8_500.0)).unwrap();
        // Overshoot is corrected within a modest number of rounds.
        let mut ok_round = None;
        for r in 0..300 {
            run.step();
            if run.total_power() <= Watts(8_500.0) + Watts(1e-6) {
                ok_round = Some(r);
                break;
            }
        }
        let r = ok_round.expect("never met the reduced budget");
        assert!(r < 200, "took {r} rounds to cap");
        assert!(run.invariant_drift() < 1e-6);
    }

    #[test]
    fn budget_raise_is_filled() {
        let (_, mut run) = run_on_ring(50, 8_500.0, 6);
        run.run(400);
        let before = run.total_power();
        run.set_budget(Watts(9_500.0)).unwrap();
        run.run(600);
        let after = run.total_power();
        assert!(
            after > before + Watts(500.0),
            "budget raise unused: {before} -> {after}"
        );
        assert!(after <= Watts(9_500.0) + Watts(1e-6));
    }

    #[test]
    fn perturbation_response_is_local() {
        // Ring of 100; change node 50's workload to an extreme CPU-bound
        // curve; nearby nodes should absorb most of the re-equilibration
        // (Fig. 4.9). The locality lives in the transient — full diffusion
        // would eventually spread a (much smaller) uniform shift — so the
        // comparison is made a modest number of rounds after the change,
        // exactly as the paper's snapshot does.
        use dpc_models::throughput::CurveParams;
        let n = 100;
        let (_, mut run) = run_on_ring(n, 16_600.0, 7);
        // Deterministic maximal swing: settle with node 50 memory-bound,
        // then flip it to the steepest CPU-bound curve.
        let u = *run.problem().utility(50);
        let flat = CurveParams::for_memory_boundedness(1.0).utility(u.p_min(), u.p_max());
        run.replace_utility(50, flat);
        run.run_to_rest(1e-3, 20, 100_000)
            .expect("settles before perturbation");
        let before = run.allocation();

        let steep = CurveParams::for_memory_boundedness(0.0).utility(u.p_min(), u.p_max());
        run.replace_utility(50, steep);
        run.run(150);
        let after = run.allocation();

        let delta = |i: usize| (after.power(i) - before.power(i)).abs().0;
        let near: f64 = (45..=55).filter(|&i| i != 50).map(delta).sum::<f64>() / 10.0;
        let far: f64 = (0..10).chain(90..100).map(delta).sum::<f64>() / 20.0;
        assert!(
            near > 1.5 * far,
            "perturbation response not local: near {near} vs far {far}"
        );
        assert!(run.invariant_drift() < 1e-6);
    }

    #[test]
    fn higher_connectivity_converges_no_slower() {
        let p = problem(60, 10_000.0, 8);
        let opt = p.total_utility(&centralized::solve(&p).allocation);
        let mut ring = DibaRun::new(p.clone(), Graph::ring(60), DibaConfig::default()).unwrap();
        let mut dense = DibaRun::new(
            p.clone(),
            Graph::ring_with_chords(60, 12),
            DibaConfig::default(),
        )
        .unwrap();
        let r_ring = ring
            .run_until_within(opt, 0.01, 10_000)
            .expect("ring converges");
        let r_dense = dense
            .run_until_within(opt, 0.01, 10_000)
            .expect("dense converges");
        assert!(
            r_dense <= r_ring + 50,
            "chords should not hurt: ring {r_ring}, dense {r_dense}"
        );
    }

    #[test]
    fn unconstrained_budget_drives_everyone_to_peak() {
        let p = problem(20, 1e6, 9);
        let mut run = DibaRun::new(p.clone(), Graph::ring(20), DibaConfig::default()).unwrap();
        run.run(500);
        for (u, &pw) in p.utilities().iter().zip(run.allocation().powers()) {
            assert!(
                pw > u.p_max() - Watts(2.0),
                "node stuck at {pw} of {}",
                u.p_max()
            );
        }
    }

    #[test]
    fn run_to_rest_detects_equilibrium() {
        let (_, mut run) = run_on_ring(40, 6_800.0, 10);
        // The slack-diffusion tail decays slowly; resting below 10 mW of
        // per-node movement is equilibrium for all practical purposes.
        let rounds = run.run_to_rest(1e-2, 10, 10_000);
        assert!(rounds.is_some(), "never rested");
        // After rest, further steps barely move.
        run.step();
        assert!(run.last_max_step() < 2e-2);
    }

    #[test]
    fn warm_budget_trim_beats_cold_restart() {
        // The tentpole claim in miniature: after a small budget event, the
        // warm run (carried residual state, proportional re-arm) re-settles
        // in fewer rounds than a cold start on the mutated instance.
        let (_, mut warm) = run_on_ring(200, 33_000.0, 12);
        warm.run_to_rest(1e-2, 10, 100_000).expect("initial settle");
        let trimmed = Watts(33_000.0 * 0.99);
        warm.set_budget(trimmed).unwrap();
        let warm_rounds = warm.run_to_rest(1e-2, 10, 100_000).expect("warm re-settle");

        let cold_problem = warm.problem().clone();
        let mut cold = DibaRun::new(cold_problem, Graph::ring(200), DibaConfig::default()).unwrap();
        let cold_rounds = cold.run_to_rest(1e-2, 10, 100_000).expect("cold settle");
        assert!(
            warm_rounds < cold_rounds,
            "warm {warm_rounds} rounds vs cold {cold_rounds}"
        );
        assert!(warm.invariant_drift() < 1e-6);
    }

    #[test]
    fn warm_retune_matches_cold_eta_exactly() {
        // Warm mutations re-tune η from the mutated problem with the same
        // pure function a cold run auto-tunes with, so warm and cold share
        // one barrier equilibrium. Pinned η stays pinned.
        let (_, mut warm) = run_on_ring(60, 10_000.0, 13);
        warm.run(100);
        warm.set_budget(Watts(9_700.0)).unwrap();
        let u = *warm.problem().utility(7);
        warm.replace_utilities(&[(
            7,
            dpc_models::throughput::CurveParams::for_memory_boundedness(0.9)
                .utility(u.p_min(), u.p_max()),
        )])
        .unwrap();
        let cold = DibaRun::new(
            warm.problem().clone(),
            Graph::ring(60),
            DibaConfig::default(),
        )
        .unwrap();
        assert_eq!(warm.eta().to_bits(), cold.eta().to_bits());
        assert_eq!(
            warm.params().margin.to_bits(),
            cold.params().margin.to_bits()
        );

        let pinned_cfg = DibaConfig {
            eta: Some(0.25),
            ..DibaConfig::default()
        };
        let p = problem(20, 3_400.0, 13);
        let mut pinned = DibaRun::new(p, Graph::ring(20), pinned_cfg).unwrap();
        pinned.set_budget(Watts(3_300.0)).unwrap();
        assert_eq!(pinned.eta(), 0.25);
    }

    #[test]
    fn replace_utilities_rejects_unknown_node_and_leaves_state_intact() {
        let (_, mut run) = run_on_ring(10, 1_700.0, 14);
        run.run(50);
        let before = run.node_states();
        let eta_before = run.eta();
        let u = *run.problem().utility(0);
        let err = run.replace_utilities(&[(0, u), (10, u)]).unwrap_err();
        assert!(
            matches!(
                err,
                AlgError::UnknownNode {
                    node: 10,
                    nodes: 10
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("unknown node 10"), "{err}");
        assert_eq!(run.node_states(), before, "state mutated on error");
        assert_eq!(run.eta(), eta_before);
    }

    #[test]
    fn batched_replace_conserves_and_marks_telemetry() {
        use crate::telemetry::TelemetryConfig;
        use dpc_models::throughput::CurveParams;
        let p = problem(30, 5_100.0, 15);
        let config = DibaConfig {
            telemetry: TelemetryConfig::on(),
            ..DibaConfig::default()
        };
        let mut run = DibaRun::new(p, Graph::ring(30), config).unwrap();
        run.run(200);
        let changes: Vec<(usize, dpc_models::QuadraticUtility)> = [3usize, 11, 22]
            .iter()
            .map(|&i| {
                let u = *run.problem().utility(i);
                (
                    i,
                    CurveParams::for_memory_boundedness(0.8).utility(u.p_min(), u.p_max()),
                )
            })
            .collect();
        run.set_budget(Watts(5_000.0)).unwrap();
        run.replace_utilities(&changes).unwrap();
        assert!(run.invariant_drift() < 1e-6, "{}", run.invariant_drift());
        let events: Vec<_> = run.telemetry().unwrap().events().collect();
        assert_eq!(events.len(), 4, "{events:?}");
        assert_eq!(events[0].kind, FaultEventKind::Budget);
        assert!((events[0].mass - (-100.0)).abs() < 1e-9);
        assert!(events[1..]
            .iter()
            .all(|e| e.kind == FaultEventKind::Workload));
        run.run(200);
        assert!(run.total_power() <= Watts(5_000.0) + Watts(1e-6));
    }
}
