//! Deterministic sharded round execution.
//!
//! The per-round work of every solver in this crate (DiBA's node actions,
//! primal-dual's primal responses, the simulator's per-node stepping) is an
//! embarrassingly parallel map over node ranges plus a small reduction. This
//! module provides the one harness they all share:
//!
//! * [`ParallelEngine`] — runs a worker function on `W` scoped threads
//!   (`std::thread::scope`; no extra crates, no persistent pool), with the
//!   `W == 1` case executing inline on the caller's thread so the serial
//!   path spawns nothing and allocates nothing;
//! * [`SharedSlice`] — an unsafe-but-audited shared view of a `&mut [T]`
//!   for the disjoint-range writes and barrier-ordered cross-phase reads
//!   the round structure needs;
//! * [`shard_bounds`] / [`shard_bounds_aligned`] — contiguous node-range
//!   partitions;
//! * [`chunked_sum`] — the fixed-chunk reduction that makes parallel sums
//!   *bitwise* independent of the worker count.
//!
//! # Determinism
//!
//! Floating-point addition is not associative, so "split the sum across
//! threads and merge" changes results with the thread count. Every reduction
//! here is therefore defined over *fixed-size chunks* ([`REDUCE_CHUNK`]):
//! chunk `k` always covers elements `k·C .. (k+1)·C`, each chunk's partial
//! is computed left-to-right by exactly one worker, and partials are folded
//! in ascending chunk order. The result is a pure function of the input —
//! any worker count, including 1, produces identical bits. Max-reductions
//! (`f64::max` over per-worker maxima) are exactly associative for the
//! NaN-free values used here and need no chunking.

use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::ops::Range;

/// Fixed reduction-chunk width (elements). Shard boundaries produced by
/// [`shard_bounds_aligned`] fall on multiples of this, so a chunk is never
/// split across workers.
pub const REDUCE_CHUNK: usize = 4096;

/// A scoped-thread fan-out engine with a resolved worker count.
///
/// Construction only stores the count; threads are spawned per
/// [`ParallelEngine::run_workers`] call and joined before it returns, so an
/// engine is plain data (`Copy`) and embeds freely in solver state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelEngine {
    workers: usize,
}

impl ParallelEngine {
    /// Resolves the worker count: `None` takes the machine's available
    /// parallelism, `Some(w)` forces `w` (clamped to at least 1).
    pub fn new(threads: Option<usize>) -> ParallelEngine {
        let workers = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1);
        ParallelEngine { workers }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker count to actually use for `items` work items — never more
    /// workers than items (empty shards would still pay a thread spawn).
    pub fn workers_for(&self, items: usize) -> usize {
        self.workers.min(items.max(1))
    }

    /// Runs `f(0), f(1), …, f(workers−1)` concurrently on scoped threads and
    /// returns when all are done. Worker 0 runs on the calling thread; with
    /// one worker nothing is spawned and `f(0)` runs inline.
    ///
    /// `workers` is the per-call count (typically
    /// [`ParallelEngine::workers_for`] of the item count).
    pub fn run_workers<F>(&self, workers: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if workers <= 1 {
            f(0);
            return;
        }
        std::thread::scope(|s| {
            for w in 1..workers {
                let f = &f;
                s.spawn(move || f(w));
            }
            f(0);
        });
    }
}

/// Splits `0..n` into `shards` contiguous ranges of near-equal size,
/// returned as ascending cut points (`shards + 1` entries, first 0, last
/// `n`). Trailing ranges may be empty when `n < shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_bounds(n: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "at least one shard required");
    (0..=shards).map(|k| n * k / shards).collect()
}

/// Like [`shard_bounds`], but every interior cut point is rounded down to a
/// multiple of `align`, so an `align`-sized reduction chunk always belongs
/// to exactly one shard.
///
/// # Panics
///
/// Panics if `shards` or `align` is zero.
pub fn shard_bounds_aligned(n: usize, shards: usize, align: usize) -> Vec<usize> {
    assert!(align > 0, "alignment must be positive");
    let mut cuts = shard_bounds(n, shards);
    for c in &mut cuts[1..shards] {
        *c -= *c % align;
    }
    cuts
}

/// Sums `values` over fixed [`REDUCE_CHUNK`]-sized chunks, folding chunk
/// partials in ascending order. This is the *reference* reduction: a
/// parallel sum whose workers each cover whole chunks (see
/// [`shard_bounds_aligned`]) and whose partials are folded in the same
/// ascending order reproduces these bits exactly.
pub fn chunked_sum(values: &[f64]) -> f64 {
    values
        .chunks(REDUCE_CHUNK)
        .map(|c| c.iter().sum::<f64>())
        .fold(0.0, |a, b| a + b)
}

/// Number of [`REDUCE_CHUNK`] chunks covering `n` elements.
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(REDUCE_CHUNK)
}

/// A shared, unsynchronized view of a `&mut [T]` for sharded round
/// execution.
///
/// The round engines hand every worker the whole array but a contract: a
/// worker only *writes* indices inside its own shard, and only *reads*
/// indices written by other workers across a barrier (`std::sync::Barrier`)
/// that orders the writes before the reads. Under that discipline no
/// location is ever accessed concurrently with a write, which is exactly
/// the data-race-freedom the `unsafe` accessors below require.
///
/// The borrow of the underlying slice is held for `'a`, so the exclusive
/// `&mut [T]` cannot be used (or even observed) while views exist.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a SharedSlice is a borrowed view whose cross-thread use is
// governed by the shard/barrier contract documented on the type; moving or
// sharing the view itself is safe whenever `T` can move between threads.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice borrow in a shareable view.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Element count of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may be writing element `i`
    /// concurrently (writes by other workers must be ordered before this
    /// read by a barrier).
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: bounds and non-aliasing guaranteed by the caller.
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, `i` lies in the calling worker's own shard, and no other
    /// thread accesses element `i` until a barrier orders this write.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: bounds and exclusivity guaranteed by the caller.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Borrows `range` immutably.
    ///
    /// # Safety
    ///
    /// `range` is in bounds and no thread writes any element of it for the
    /// lifetime of the returned slice.
    #[inline]
    pub unsafe fn slice(&self, range: Range<usize>) -> &[T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: bounds and immutability guaranteed by the caller.
        unsafe { std::slice::from_raw_parts(self.ptr.add(range.start), range.len()) }
    }

    /// Borrows `range` mutably.
    ///
    /// # Safety
    ///
    /// `range` is in bounds, lies in the calling worker's own shard, and no
    /// other thread accesses any element of it for the lifetime of the
    /// returned slice.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the aliasing contract is the point of the type
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: bounds and exclusivity guaranteed by the caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn engine_resolves_thread_counts() {
        assert_eq!(ParallelEngine::new(Some(4)).workers(), 4);
        assert_eq!(ParallelEngine::new(Some(0)).workers(), 1);
        assert!(ParallelEngine::new(None).workers() >= 1);
        assert_eq!(ParallelEngine::new(Some(8)).workers_for(3), 3);
        assert_eq!(ParallelEngine::new(Some(2)).workers_for(0), 1);
    }

    #[test]
    fn run_workers_visits_every_index_once() {
        let engine = ParallelEngine::new(Some(5));
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        engine.run_workers(5, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn serial_worker_runs_inline() {
        let engine = ParallelEngine::new(Some(1));
        let caller = std::thread::current().id();
        let mut same_thread = false;
        // Fn + Sync, so interior mutability via a cell is the simplest probe.
        let cell = std::sync::Mutex::new(&mut same_thread);
        engine.run_workers(1, |w| {
            assert_eq!(w, 0);
            **cell.lock().unwrap() = std::thread::current().id() == caller;
        });
        assert!(same_thread, "single-worker path must not spawn");
    }

    #[test]
    fn shard_bounds_cover_everything() {
        for (n, shards) in [(10, 3), (0, 2), (7, 7), (5, 9), (100, 1)] {
            let cuts = shard_bounds(n, shards);
            assert_eq!(cuts.len(), shards + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), n);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn aligned_bounds_respect_chunk_multiples() {
        let cuts = shard_bounds_aligned(10_000, 3, REDUCE_CHUNK);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), 10_000);
        for c in &cuts[1..cuts.len() - 1] {
            assert_eq!(c % REDUCE_CHUNK, 0, "cut {c} not chunk-aligned");
        }
    }

    #[test]
    fn chunked_sum_is_worker_count_invariant() {
        // Values chosen to expose association differences immediately.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) as f64).sqrt() * 1e-3 + 1e9)
            .collect();
        let reference = chunked_sum(&values);
        for workers in [1usize, 2, 3, 7] {
            let cuts = shard_bounds_aligned(values.len(), workers, REDUCE_CHUNK);
            let mut partials = vec![0.0_f64; chunk_count(values.len())];
            let shared = SharedSlice::new(&mut partials);
            let engine = ParallelEngine::new(Some(workers));
            engine.run_workers(workers, |w| {
                let range = cuts[w]..cuts[w + 1];
                for start in range.clone().step_by(REDUCE_CHUNK) {
                    let end = (start + REDUCE_CHUNK).min(range.end);
                    let partial = values[start..end].iter().sum::<f64>();
                    // SAFETY: chunk indices are disjoint across workers
                    // because the cuts are chunk-aligned.
                    unsafe { shared.write(start / REDUCE_CHUNK, partial) };
                }
            });
            let total = partials.iter().fold(0.0, |a, &b| a + b);
            assert_eq!(total.to_bits(), reference.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn shared_slice_disjoint_writes_land() {
        let mut data = vec![0usize; 64];
        let shared = SharedSlice::new(&mut data);
        let engine = ParallelEngine::new(Some(4));
        let cuts = shard_bounds(64, 4);
        engine.run_workers(4, |w| {
            // SAFETY: ranges are disjoint per worker.
            let mine = unsafe { shared.slice_mut(cuts[w]..cuts[w + 1]) };
            for (off, v) in mine.iter_mut().enumerate() {
                *v = cuts[w] + off;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }
}
