//! Deterministic sharded round execution.
//!
//! The per-round work of every solver in this crate (DiBA's node actions,
//! primal-dual's primal responses, the simulator's per-node stepping) is an
//! embarrassingly parallel map over node ranges plus a small reduction. This
//! module provides the one harness they all share:
//!
//! * [`Threads`] — the execution policy knob (`Auto` picks serial or
//!   pooled-parallel per problem size via [`auto_workers`]; `Fixed` forces
//!   a count);
//! * [`WorkerPool`] — a *persistent* pool: threads are spawned once per
//!   run, park on a channel between dispatches, and are fed borrowed jobs
//!   through a raw-pointer handoff sealed by a completion handshake;
//! * [`ParallelEngine`] — the scoped-spawn fan-out (`std::thread::scope`,
//!   threads spawned per call), kept as the comparison baseline the
//!   benchmarks measure the pool against;
//! * [`Engine`] — one of the two above behind a single `run_workers` call,
//!   selected by [`Backend`];
//! * [`SpinBarrier`] — the reusable two-phase round barrier (atomics with
//!   bounded spin-then-yield, parking on a condvar when the wait runs
//!   long or the worker count oversubscribes the host);
//! * [`SharedSlice`] — an unsafe-but-audited shared view of a `&mut [T]`
//!   for the disjoint-range writes and barrier-ordered cross-phase reads
//!   the round structure needs;
//! * [`shard_bounds`] / [`shard_bounds_aligned`] — contiguous node-range
//!   partitions;
//! * [`chunked_sum`] — the fixed-chunk reduction that makes parallel sums
//!   *bitwise* independent of the worker count.
//!
//! # Determinism
//!
//! Floating-point addition is not associative, so "split the sum across
//! threads and merge" changes results with the thread count. Every reduction
//! here is therefore defined over *fixed-size chunks* ([`REDUCE_CHUNK`]):
//! chunk `k` always covers elements `k·C .. (k+1)·C`, each chunk's partial
//! is computed left-to-right by exactly one worker, and partials are folded
//! in ascending chunk order. The result is a pure function of the input —
//! any worker count, including 1, produces identical bits. Max-reductions
//! (`f64::max` over per-worker maxima) are exactly associative for the
//! NaN-free values used here and need no chunking.
//!
//! Execution-policy choices (serial vs pooled vs scoped, any worker count)
//! therefore never change results; [`Threads::Auto`] is free to chase
//! throughput alone.

use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The host's available parallelism (1 when it cannot be determined).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Cluster size below which [`Threads::Auto`] runs serial. Measured on the
/// pooled engine: a round over `n` nodes costs ≈14–16 ns/node, while a
/// pooled dispatch plus its three round barriers costs a few microseconds,
/// so splitting fewer than ~8 k nodes buys less than the synchronization
/// spends (see DESIGN.md, "Performance engineering", for the cutover
/// measurements behind both constants).
pub const AUTO_SERIAL_CUTOVER: usize = 8_192;

/// Minimum nodes per worker before [`Threads::Auto`] adds another one, so
/// every shard amortizes its share of the barrier cost.
pub const AUTO_NODES_PER_WORKER: usize = 4_096;

/// The measured adaptive policy: worker count for `items` work items on a
/// host with `host` hardware threads. Serial below [`AUTO_SERIAL_CUTOVER`];
/// above it, one worker per [`AUTO_NODES_PER_WORKER`] items, capped at the
/// host's parallelism (oversubscription only ever loses).
pub fn auto_workers(items: usize, host: usize) -> usize {
    if host <= 1 || items < AUTO_SERIAL_CUTOVER {
        return 1;
    }
    host.min(items / AUTO_NODES_PER_WORKER).max(1)
}

/// Worker-thread policy for the round engines.
///
/// `Auto` (the default) applies the measured serial↔parallel cutover of
/// [`auto_workers`] — small problems run inline on the caller's thread,
/// large ones shard across the persistent pool. `Fixed(w)` forces exactly
/// `w` workers. Either way the trajectory is bitwise identical (see the
/// module docs); the policy only moves wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Pick serial or pooled-parallel per problem size and host.
    #[default]
    Auto,
    /// Force this many workers (0 is rejected by config validation).
    Fixed(usize),
}

impl Threads {
    /// Resolves the policy to a worker count for `items` work items —
    /// never more workers than items.
    pub fn resolve(self, items: usize) -> usize {
        let w = match self {
            Threads::Auto => auto_workers(items, host_parallelism()),
            Threads::Fixed(w) => w.max(1),
        };
        w.min(items.max(1))
    }

    /// The forced count, when fixed.
    pub fn fixed(self) -> Option<usize> {
        match self {
            Threads::Auto => None,
            Threads::Fixed(w) => Some(w),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Auto => f.write_str("auto"),
            Threads::Fixed(w) => write!(f, "{w}"),
        }
    }
}

impl std::str::FromStr for Threads {
    type Err = String;

    /// Parses `auto` or a positive worker count.
    fn from_str(s: &str) -> Result<Threads, String> {
        match s.trim() {
            "auto" => Ok(Threads::Auto),
            other => match other.parse::<usize>() {
                Ok(0) => Err("thread count must be positive (or `auto`)".to_string()),
                Ok(w) => Ok(Threads::Fixed(w)),
                Err(_) => Err(format!(
                    "expected `auto` or a positive integer, got `{other}`"
                )),
            },
        }
    }
}

/// Fixed reduction-chunk width (elements). Shard boundaries produced by
/// [`shard_bounds_aligned`] fall on multiples of this, so a chunk is never
/// split across workers.
pub const REDUCE_CHUNK: usize = 4096;

/// A scoped-thread fan-out engine with a resolved worker count.
///
/// Construction only stores the count; threads are spawned per
/// [`ParallelEngine::run_workers`] call and joined before it returns, so an
/// engine is plain data (`Copy`) and embeds freely in solver state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelEngine {
    workers: usize,
}

impl ParallelEngine {
    /// Resolves the worker count: `None` takes the machine's available
    /// parallelism, `Some(w)` forces `w` (clamped to at least 1).
    pub fn new(threads: Option<usize>) -> ParallelEngine {
        let workers = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1);
        ParallelEngine { workers }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker count to actually use for `items` work items — never more
    /// workers than items (empty shards would still pay a thread spawn).
    pub fn workers_for(&self, items: usize) -> usize {
        self.workers.min(items.max(1))
    }

    /// Runs `f(0), f(1), …, f(workers−1)` concurrently on scoped threads and
    /// returns when all are done. Worker 0 runs on the calling thread; with
    /// one worker nothing is spawned and `f(0)` runs inline.
    ///
    /// `workers` is the per-call count (typically
    /// [`ParallelEngine::workers_for`] of the item count).
    pub fn run_workers<F>(&self, workers: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if workers <= 1 {
            f(0);
            return;
        }
        std::thread::scope(|s| {
            for w in 1..workers {
                let f = &f;
                s.spawn(move || f(w));
            }
            f(0);
        });
    }
}

/// Which fan-out mechanism an [`Engine`] uses.
///
/// `Pooled` is the production default; `Scoped` (spawn-per-call) is kept so
/// benchmarks can measure exactly what the pool buys. Both produce bitwise
/// identical results for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Persistent [`WorkerPool`]: threads spawned once, parked between
    /// dispatches.
    #[default]
    Pooled,
    /// [`ParallelEngine`]: scoped threads spawned per `run_workers` call.
    Scoped,
}

/// Numerical contract of the round kernels.
///
/// `Reference` (the default) is the bitwise tier: strict program order,
/// scalar f64, no reassociation — every engine, worker count, and batch
/// size reproduces the exact same `(p, e)` bits, which is what the
/// determinism proptests and the checked-in reference trace pin.
///
/// `Fast` trades byte equality for throughput: the kernel runs over an
/// SoA copy of the curve coefficients, processes nodes in 4-wide unrolled
/// lanes, hoists the per-transfer division into a precomputed per-node
/// reciprocal, and reassociates shard-local reductions. It is *still*
/// deterministic — the same input always produces the same bits, for any
/// worker count — but those bits differ from `Reference` by accumulated
/// rounding. The contract it honors instead is **numeric equivalence**:
/// final allocations within the configured ε of the reference run and the
/// convergence round within ±k (see `DibaConfig::{equiv_eps_watts,
/// equiv_rounds}`), enforced by the `precision_equivalence` proptest
/// suite and the `dpc bench --precision fast` CI gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Bitwise-deterministic scalar kernels (the reference tier).
    #[default]
    Reference,
    /// Vectorized, reassociated kernels gated by numeric equivalence.
    Fast,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Reference => f.write_str("reference"),
            Precision::Fast => f.write_str("fast"),
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    /// Parses `reference` or `fast`; the error names the offending value.
    fn from_str(s: &str) -> Result<Precision, String> {
        match s.trim() {
            "reference" => Ok(Precision::Reference),
            "fast" => Ok(Precision::Fast),
            other => Err(format!("expected `reference` or `fast`, got `{other}`")),
        }
    }
}

/// A reusable two-phase barrier for round-structured kernels.
///
/// Sense-reversing with a generation counter: the last arriver resets the
/// count and bumps the generation; everyone else waits for the generation
/// to move. Unlike `std::sync::Barrier` there is no mutex on the arrival
/// fast path, so a round's three barrier crossings cost a handful of atomic
/// operations when the workers fit the host.
///
/// Waiting strategy: every waiter spins briefly, yields for a bounded
/// budget, then parks on a condvar — so short inter-barrier windows stay
/// on the atomic fast path while long ones (e.g. worker 0's O(n) telemetry
/// aggregation between barriers) release the core instead of burning it.
/// When `parties` exceeds the host's parallelism (oversubscribed — e.g.
/// determinism tests running 7 workers on 1 core) waiters skip straight to
/// parking, because spinning would just steal the time slice the straggler
/// needs. The releaser only takes the lock when a sleeper count says
/// someone is actually parked; a seq-cst handshake on the generation store
/// and sleeper count makes the notify race-free.
pub struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    park_immediately: bool,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl std::fmt::Debug for SpinBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinBarrier")
            .field("parties", &self.parties)
            .field("park_immediately", &self.park_immediately)
            .finish()
    }
}

impl SpinBarrier {
    /// Rounds of pure spinning before a waiter starts yielding.
    const SPIN_LIMIT: u32 = 128;

    /// Yields after the spin budget before a waiter parks on the condvar.
    const YIELD_LIMIT: u32 = 64;

    /// A barrier for `parties` workers (must be positive).
    pub fn new(parties: usize) -> SpinBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            park_immediately: parties > host_parallelism(),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Number of workers the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` workers have called `wait` for the
    /// current generation. `AcqRel` on the arrival counter and `Release`/
    /// `Acquire` on the generation bump order every write before the
    /// barrier ahead of every read after it, which is the memory contract
    /// [`SharedSlice`] users rely on.
    pub fn wait(&self) {
        if self.parties == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count *before* releasing the
            // generation, so a worker racing into the next wait() never
            // observes a stale count. The generation store and the sleeper
            // load are both seq-cst, pairing with the waiter's seq-cst
            // sleeper increment / generation re-check: either this load
            // sees the sleeper (and notifies under the lock), or the
            // waiter's re-check sees the new generation (and never parks).
            self.count.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _guard = self.lock.lock().unwrap();
                self.cond.notify_all();
            }
            return;
        }
        if !self.park_immediately {
            // Fast path: spin, then yield for a bounded budget. Most
            // inter-barrier windows resolve here; only genuinely long ones
            // (a straggling shard, worker 0's telemetry aggregation) fall
            // through to the condvar below instead of burning the core.
            let mut tries = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if tries >= Self::SPIN_LIMIT + Self::YIELD_LIMIT {
                    break;
                }
                if tries < Self::SPIN_LIMIT {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                tries += 1;
            }
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
        }
        let mut guard = self.lock.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while self.generation.load(Ordering::SeqCst) == gen {
            guard = self.cond.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A borrowed job crossing into pool workers: a type-erased pointer to the
/// caller's `Fn(usize)` plus the shim that invokes it. The completion
/// handshake in [`WorkerPool::run`] guarantees the pointee outlives every
/// use, which is what makes shipping the raw pointer sound.
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const (), usize),
    data: *const (),
}

// SAFETY: the pointee is a `Fn(usize) + Sync` closure borrowed by
// `WorkerPool::run`, which — on the normal path and on unwind (via
// `DrainGuard`) — does not return until every dispatched worker reports
// completion, so the pointer never outlives the borrow and the closure is
// safe to call from other threads.
unsafe impl Send for Job {}

/// Blocks until every outstanding completion for the current dispatch has
/// been received, *even when the dispatching frame unwinds*. Without this,
/// a panic in the inline worker (`f(0)`) would destroy `run`'s stack frame
/// while pool threads still execute the borrowed closure — a use-after-free
/// — and leave stale completions to corrupt the next dispatch. Mirrors the
/// join-on-unwind guarantee of `std::thread::scope`.
struct DrainGuard<'p> {
    done_rx: &'p crossbeam_channel::Receiver<bool>,
    pending: usize,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        for _ in 0..self.pending {
            if self.done_rx.recv().is_err() {
                // The done channel can only die if pool workers are gone
                // mid-dispatch; we can no longer prove the borrowed job is
                // quiescent, so freeing the frame would be unsound.
                std::process::abort();
            }
        }
    }
}

/// A persistent worker pool for round execution.
///
/// `workers − 1` threads (named `dpc-round-N`) are spawned at construction
/// and park on per-worker channels; worker 0 is always the calling thread.
/// Each [`WorkerPool::run`] sends one borrowed job per active worker
/// and blocks on a completion handshake, so the dispatched closure may
/// freely borrow the caller's stack. Between runs the pool costs nothing
/// but idle parked threads. Dropping the pool closes the channels and
/// joins every thread.
pub struct WorkerPool {
    senders: Vec<crossbeam_channel::Sender<Job>>,
    done_rx: crossbeam_channel::Receiver<bool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` total workers (`workers − 1` threads;
    /// worker 0 runs inline in [`WorkerPool::run`]). Clamped to at least 1.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (done_tx, done_rx) = crossbeam_channel::unbounded::<bool>();
        let mut senders = Vec::with_capacity(workers.saturating_sub(1));
        let mut handles = Vec::with_capacity(workers.saturating_sub(1));
        for w in 1..workers {
            let (tx, rx) = crossbeam_channel::unbounded::<Job>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("dpc-round-{w}"))
                .spawn(move || {
                    // Park on the channel; a closed channel is shutdown.
                    while let Ok(job) = rx.recv() {
                        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // SAFETY: `run` keeps the closure alive until
                            // this worker's completion send is received.
                            unsafe { (job.call)(job.data, w) };
                        }))
                        .is_ok();
                        // A receiver-less send only happens during teardown
                        // races; nothing to do about it here.
                        let _ = done.send(ok);
                    }
                })
                .expect("spawning a pool worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            done_rx,
            handles,
            workers,
        }
    }

    /// Total worker count (including the inline worker 0).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(0), …, f(active−1)` concurrently — worker 0 inline on the
    /// calling thread, the rest on parked pool threads — and returns when
    /// all are done. `active` is clamped to the pool size; with
    /// `active <= 1` nothing is dispatched and `f(0)` runs inline.
    ///
    /// Takes `&mut self` deliberately: dispatch and completion collection
    /// share the per-worker channels and the single `done_rx`, so two
    /// overlapping `run` calls would cross-mix completions and let one call
    /// return while the other's borrowed closure is still executing. The
    /// exclusive receiver makes that unrepresentable in safe code.
    ///
    /// # Panics
    ///
    /// Panics if a dispatched worker panicked (after all completions have
    /// been collected, so the borrow stays sound). If the *inline* worker
    /// panics, the remaining completions are drained on unwind before the
    /// frame is destroyed, so the pool stays usable and the borrow stays
    /// sound there too.
    pub fn run<F>(&mut self, active: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let active = active.clamp(1, self.workers);
        if active == 1 {
            f(0);
            return;
        }
        unsafe fn shim<F: Fn(usize) + Sync>(data: *const (), w: usize) {
            // SAFETY: `data` was erased from `&F` in this very call frame
            // and `run` outlives every worker's use of it.
            let f = unsafe { &*(data as *const F) };
            f(w);
        }
        let job = Job {
            call: shim::<F>,
            data: &f as *const F as *const (),
        };
        // Armed before the first send: from here on, every dispatched job
        // is accounted for even if a later send, `f(0)`, or a completion
        // assert unwinds this frame.
        let mut guard = DrainGuard {
            done_rx: &self.done_rx,
            pending: 0,
        };
        for tx in &self.senders[..active - 1] {
            tx.send(job).expect("pool worker hung up");
            guard.pending += 1;
        }
        f(0);
        let mut all_ok = true;
        while guard.pending > 0 {
            let ok = guard.done_rx.recv().expect("pool worker hung up");
            guard.pending -= 1;
            all_ok &= ok;
        }
        assert!(all_ok, "a pool worker panicked during a dispatched round");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels wakes every parked worker with Err.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A round-execution engine: a resolved worker count behind one of the two
/// fan-out [`Backend`]s.
///
/// Cloning rebuilds an equivalent engine (fresh pool threads for the pooled
/// backend); equality and `Debug` reflect backend and worker count only.
pub enum Engine {
    /// Scoped spawn-per-call fan-out.
    Scoped(ParallelEngine),
    /// Persistent parked worker pool.
    Pooled(WorkerPool),
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Scoped(e) => f.debug_tuple("Engine::Scoped").field(&e.workers()).finish(),
            Engine::Pooled(p) => f.debug_tuple("Engine::Pooled").field(&p.workers()).finish(),
        }
    }
}

impl Clone for Engine {
    fn clone(&self) -> Engine {
        Engine::with_backend(self.backend(), self.workers())
    }
}

impl Engine {
    /// Builds an engine with `workers` total workers on the given backend.
    pub fn with_backend(backend: Backend, workers: usize) -> Engine {
        match backend {
            Backend::Scoped => Engine::Scoped(ParallelEngine::new(Some(workers))),
            Backend::Pooled => Engine::Pooled(WorkerPool::new(workers)),
        }
    }

    /// The backend this engine fans out on.
    pub fn backend(&self) -> Backend {
        match self {
            Engine::Scoped(_) => Backend::Scoped,
            Engine::Pooled(_) => Backend::Pooled,
        }
    }

    /// Total worker count.
    pub fn workers(&self) -> usize {
        match self {
            Engine::Scoped(e) => e.workers(),
            Engine::Pooled(p) => p.workers(),
        }
    }

    /// The worker count to actually use for `items` work items — never
    /// more workers than items.
    pub fn workers_for(&self, items: usize) -> usize {
        self.workers().min(items.max(1))
    }

    /// Runs `f(0), …, f(active−1)` concurrently and returns when all are
    /// done; worker 0 always runs on the calling thread. `&mut` because the
    /// pooled backend's dispatch channels require exclusive access (see
    /// [`WorkerPool::run`]).
    pub fn run_workers<F>(&mut self, active: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match self {
            Engine::Scoped(e) => e.run_workers(active, f),
            Engine::Pooled(p) => p.run(active, f),
        }
    }
}

/// Splits `0..n` into `shards` contiguous ranges of near-equal size,
/// returned as ascending cut points (`shards + 1` entries, first 0, last
/// `n`). Trailing ranges may be empty when `n < shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_bounds(n: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "at least one shard required");
    (0..=shards).map(|k| n * k / shards).collect()
}

/// Like [`shard_bounds`], but every interior cut point is rounded down to a
/// multiple of `align`, so an `align`-sized reduction chunk always belongs
/// to exactly one shard.
///
/// # Panics
///
/// Panics if `shards` or `align` is zero.
pub fn shard_bounds_aligned(n: usize, shards: usize, align: usize) -> Vec<usize> {
    assert!(align > 0, "alignment must be positive");
    let mut cuts = shard_bounds(n, shards);
    for c in &mut cuts[1..shards] {
        *c -= *c % align;
    }
    cuts
}

/// Sums `values` over fixed [`REDUCE_CHUNK`]-sized chunks, folding chunk
/// partials in ascending order. This is the *reference* reduction: a
/// parallel sum whose workers each cover whole chunks (see
/// [`shard_bounds_aligned`]) and whose partials are folded in the same
/// ascending order reproduces these bits exactly.
pub fn chunked_sum(values: &[f64]) -> f64 {
    values
        .chunks(REDUCE_CHUNK)
        .map(|c| c.iter().sum::<f64>())
        .fold(0.0, |a, b| a + b)
}

/// Number of [`REDUCE_CHUNK`] chunks covering `n` elements.
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(REDUCE_CHUNK)
}

/// A shared, unsynchronized view of a `&mut [T]` for sharded round
/// execution.
///
/// The round engines hand every worker the whole array but a contract: a
/// worker only *writes* indices inside its own shard, and only *reads*
/// indices written by other workers across a barrier (`std::sync::Barrier`)
/// that orders the writes before the reads. Under that discipline no
/// location is ever accessed concurrently with a write, which is exactly
/// the data-race-freedom the `unsafe` accessors below require.
///
/// The borrow of the underlying slice is held for `'a`, so the exclusive
/// `&mut [T]` cannot be used (or even observed) while views exist.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a SharedSlice is a borrowed view whose cross-thread use is
// governed by the shard/barrier contract documented on the type; moving or
// sharing the view itself is safe whenever `T` can move between threads.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice borrow in a shareable view.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Element count of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may be writing element `i`
    /// concurrently (writes by other workers must be ordered before this
    /// read by a barrier).
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: bounds and non-aliasing guaranteed by the caller.
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, `i` lies in the calling worker's own shard, and no other
    /// thread accesses element `i` until a barrier orders this write.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: bounds and exclusivity guaranteed by the caller.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Borrows `range` immutably.
    ///
    /// # Safety
    ///
    /// `range` is in bounds and no thread writes any element of it for the
    /// lifetime of the returned slice.
    #[inline]
    pub unsafe fn slice(&self, range: Range<usize>) -> &[T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: bounds and immutability guaranteed by the caller.
        unsafe { std::slice::from_raw_parts(self.ptr.add(range.start), range.len()) }
    }

    /// Borrows `range` mutably.
    ///
    /// # Safety
    ///
    /// `range` is in bounds, lies in the calling worker's own shard, and no
    /// other thread accesses any element of it for the lifetime of the
    /// returned slice.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the aliasing contract is the point of the type
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: bounds and exclusivity guaranteed by the caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn engine_resolves_thread_counts() {
        assert_eq!(ParallelEngine::new(Some(4)).workers(), 4);
        assert_eq!(ParallelEngine::new(Some(0)).workers(), 1);
        assert!(ParallelEngine::new(None).workers() >= 1);
        assert_eq!(ParallelEngine::new(Some(8)).workers_for(3), 3);
        assert_eq!(ParallelEngine::new(Some(2)).workers_for(0), 1);
    }

    #[test]
    fn run_workers_visits_every_index_once() {
        let engine = ParallelEngine::new(Some(5));
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        engine.run_workers(5, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn serial_worker_runs_inline() {
        let engine = ParallelEngine::new(Some(1));
        let caller = std::thread::current().id();
        let mut same_thread = false;
        // Fn + Sync, so interior mutability via a cell is the simplest probe.
        let cell = std::sync::Mutex::new(&mut same_thread);
        engine.run_workers(1, |w| {
            assert_eq!(w, 0);
            **cell.lock().unwrap() = std::thread::current().id() == caller;
        });
        assert!(same_thread, "single-worker path must not spawn");
    }

    #[test]
    fn shard_bounds_cover_everything() {
        for (n, shards) in [(10, 3), (0, 2), (7, 7), (5, 9), (100, 1)] {
            let cuts = shard_bounds(n, shards);
            assert_eq!(cuts.len(), shards + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), n);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn aligned_bounds_respect_chunk_multiples() {
        let cuts = shard_bounds_aligned(10_000, 3, REDUCE_CHUNK);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), 10_000);
        for c in &cuts[1..cuts.len() - 1] {
            assert_eq!(c % REDUCE_CHUNK, 0, "cut {c} not chunk-aligned");
        }
    }

    #[test]
    fn chunked_sum_is_worker_count_invariant() {
        // Values chosen to expose association differences immediately.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) as f64).sqrt() * 1e-3 + 1e9)
            .collect();
        let reference = chunked_sum(&values);
        for workers in [1usize, 2, 3, 7] {
            let cuts = shard_bounds_aligned(values.len(), workers, REDUCE_CHUNK);
            let mut partials = vec![0.0_f64; chunk_count(values.len())];
            let shared = SharedSlice::new(&mut partials);
            let engine = ParallelEngine::new(Some(workers));
            engine.run_workers(workers, |w| {
                let range = cuts[w]..cuts[w + 1];
                for start in range.clone().step_by(REDUCE_CHUNK) {
                    let end = (start + REDUCE_CHUNK).min(range.end);
                    let partial = values[start..end].iter().sum::<f64>();
                    // SAFETY: chunk indices are disjoint across workers
                    // because the cuts are chunk-aligned.
                    unsafe { shared.write(start / REDUCE_CHUNK, partial) };
                }
            });
            let total = partials.iter().fold(0.0, |a, &b| a + b);
            assert_eq!(total.to_bits(), reference.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn threads_policy_parses_and_resolves() {
        assert_eq!("auto".parse::<Threads>(), Ok(Threads::Auto));
        assert_eq!(" 3 ".parse::<Threads>(), Ok(Threads::Fixed(3)));
        assert!("0".parse::<Threads>().is_err());
        assert!("many".parse::<Threads>().is_err());
        assert_eq!(Threads::default(), Threads::Auto);
        assert_eq!(Threads::Fixed(4).resolve(2), 2); // never more workers than items
        assert_eq!(Threads::Fixed(4).resolve(1_000_000), 4);
        assert_eq!(Threads::Auto.resolve(10), 1); // below cutover: serial
        assert_eq!(format!("{}", Threads::Auto), "auto");
        assert_eq!(format!("{}", Threads::Fixed(7)), "7");
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!("reference".parse::<Precision>(), Ok(Precision::Reference));
        assert_eq!(" fast ".parse::<Precision>(), Ok(Precision::Fast));
        assert_eq!(Precision::default(), Precision::Reference);
        assert_eq!(format!("{}", Precision::Reference), "reference");
        assert_eq!(format!("{}", Precision::Fast), "fast");
        // The parse error names the bad value.
        let err = "turbo".parse::<Precision>().unwrap_err();
        assert!(err.contains("`turbo`"), "{err}");
        assert!(err.contains("reference") && err.contains("fast"), "{err}");
    }

    #[test]
    fn auto_policy_respects_cutover_and_host() {
        assert_eq!(auto_workers(100, 8), 1, "tiny problems stay serial");
        assert_eq!(auto_workers(AUTO_SERIAL_CUTOVER - 1, 8), 1);
        assert_eq!(auto_workers(100_000, 1), 1, "1-core hosts stay serial");
        assert_eq!(auto_workers(100_000, 4), 4, "big problems take the host");
        assert_eq!(
            auto_workers(AUTO_SERIAL_CUTOVER, 64),
            AUTO_SERIAL_CUTOVER / AUTO_NODES_PER_WORKER,
            "worker count is bounded by nodes-per-worker"
        );
    }

    #[test]
    fn spin_barrier_orders_phases() {
        for parties in [2usize, 3, 7] {
            let barrier = SpinBarrier::new(parties);
            let mut phase_a = vec![0usize; parties];
            let mut phase_b = vec![0usize; parties];
            let a = SharedSlice::new(&mut phase_a);
            let b = SharedSlice::new(&mut phase_b);
            let engine = ParallelEngine::new(Some(parties));
            engine.run_workers(parties, |w| {
                // SAFETY: each worker writes only its own index; the
                // barrier orders phase-A writes before phase-B reads.
                unsafe { a.write(w, w + 1) };
                barrier.wait();
                let total = (0..parties).map(|i| unsafe { a.read(i) }).sum::<usize>();
                unsafe { b.write(w, total) };
                barrier.wait();
            });
            let expect = parties * (parties + 1) / 2;
            assert!(phase_b.iter().all(|&v| v == expect), "parties={parties}");
        }
    }

    #[test]
    fn spin_barrier_is_reusable_across_generations() {
        let parties = 4;
        let barrier = SpinBarrier::new(parties);
        let counter = AtomicUsize::new(0);
        let engine = ParallelEngine::new(Some(parties));
        engine.run_workers(parties, |_| {
            for round in 0..50 {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // After the barrier every worker must see all arrivals of
                // this generation.
                assert!(counter.load(Ordering::SeqCst) >= (round + 1) * parties);
                barrier.wait();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * parties);
    }

    #[test]
    fn worker_pool_visits_every_index_once() {
        let mut pool = WorkerPool::new(5);
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.run(5, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_pool_is_reusable_and_borrows_caller_stack() {
        let mut pool = WorkerPool::new(3);
        let mut acc = vec![0usize; 3];
        for round in 1..=20 {
            let shared = SharedSlice::new(&mut acc);
            pool.run(3, |w| {
                // SAFETY: disjoint per-worker indices.
                let v = unsafe { shared.read(w) };
                unsafe { shared.write(w, v + round) };
            });
        }
        let expect = (1..=20).sum::<usize>();
        assert!(acc.iter().all(|&v| v == expect));
    }

    #[test]
    fn worker_pool_partial_dispatch_leaves_idle_workers_parked() {
        let mut pool = WorkerPool::new(6);
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        pool.run(2, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits[0].load(Ordering::SeqCst), 1);
        assert_eq!(hits[1].load(Ordering::SeqCst), 1);
        assert!(hits[2..].iter().all(|h| h.load(Ordering::SeqCst) == 0));
    }

    #[test]
    fn worker_pool_drains_completions_when_inline_worker_panics() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, |w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
                if w == 0 {
                    panic!("inline worker dies mid-dispatch");
                }
            });
        }));
        assert!(unwound.is_err());
        // The unwind must have drained all three pool-worker completions:
        // a clean follow-up dispatch sees exactly its own handshakes and
        // every worker fires exactly once more.
        pool.run(4, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits[0].load(Ordering::SeqCst), 2);
        assert!(hits[1..].iter().all(|h| h.load(Ordering::SeqCst) == 2));
    }

    #[test]
    fn worker_pool_reports_pool_worker_panic_and_stays_usable() {
        let mut pool = WorkerPool::new(3);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(3, |w| {
                if w == 2 {
                    panic!("pool worker dies");
                }
            });
        }));
        assert!(
            unwound.is_err(),
            "a worker panic must surface to the caller"
        );
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(3, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn engine_backends_agree() {
        for backend in [Backend::Scoped, Backend::Pooled] {
            let mut engine = Engine::with_backend(backend, 4);
            assert_eq!(engine.backend(), backend);
            assert_eq!(engine.workers(), 4);
            assert_eq!(engine.workers_for(2), 2);
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            engine.run_workers(4, |w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
            let copy = engine.clone();
            assert_eq!(copy.backend(), backend);
            assert_eq!(copy.workers(), 4);
        }
    }

    #[test]
    fn shared_slice_disjoint_writes_land() {
        let mut data = vec![0usize; 64];
        let shared = SharedSlice::new(&mut data);
        let engine = ParallelEngine::new(Some(4));
        let cuts = shard_bounds(64, 4);
        engine.run_workers(4, |w| {
            // SAFETY: ranges are disjoint per worker.
            let mine = unsafe { shared.slice_mut(cuts[w]..cuts[w + 1]) };
            for (off, v) in mine.iter_mut().enumerate() {
                *v = cuts[w] + off;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }
}
