//! The protocol message exchanged along a graph edge each DiBA round.
//!
//! Extracted here so every execution substrate speaks the same payload:
//! the in-process thread prototype (`dpc-agents`), the simulator
//! (`crate::diba_async`), and the deployable node runtime (`dpc-runtime`,
//! which wraps it in a versioned wire frame for TCP links). Keeping the
//! payload in the algorithm crate means a substrate cannot silently add
//! fields the math does not account for.

/// One round's state exchange from a node to one neighbor.
///
/// Pairwise conservation is the contract: the sender subtracts `transfer`
/// from its own residual when it sends, the receiver adds it on receipt, so
/// `Σe` is invariant under messaging regardless of delivery order. `e` is
/// advisory (the sender's residual *after* its local action this round);
/// `transfer` is mass and must never be dropped silently — a transport that
/// fails to deliver must report it so the sender can reclaim.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundMsg {
    /// Sender's residual estimate after its action this round (watts).
    pub e: f64,
    /// Slack donated to the receiver this round (watts, ≤ 0).
    pub transfer: f64,
}

impl RoundMsg {
    /// `true` when both fields are finite — the only payloads the solvers
    /// produce and the only ones a transport should accept.
    pub fn is_finite(&self) -> bool {
        self.e.is_finite() && self.transfer.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_check() {
        assert!(RoundMsg::default().is_finite());
        assert!(RoundMsg {
            e: -3.0,
            transfer: -0.5
        }
        .is_finite());
        assert!(!RoundMsg {
            e: f64::NAN,
            transfer: 0.0
        }
        .is_finite());
        assert!(!RoundMsg {
            e: 0.0,
            transfer: f64::INFINITY
        }
        .is_finite());
    }
}
