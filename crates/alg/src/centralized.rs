//! Centralized oracle solver.
//!
//! The paper solves Eqs. 4.1–4.3 centrally with CVX; for concave quadratics
//! with box constraints the KKT conditions give a closed form per dual price
//! λ — every server sits at `argmax r_i(p) − λ·p` — and the total power
//! `Σ p_i(λ)` is nonincreasing in λ, so the optimal price is found by
//! bisection (water-filling). This is exact to tolerance and serves as the
//! reference every decentralized scheme is measured against.

use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::units::Watts;

/// Result of the centralized solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedSolution {
    /// The optimal power caps.
    pub allocation: Allocation,
    /// The optimal dual price λ* (0 when the budget is slack).
    pub lambda: f64,
    /// Bisection iterations used.
    pub iterations: usize,
}

/// Tolerance on the budget residual, as a fraction of the budget.
const BUDGET_REL_TOL: f64 = 1e-9;

/// Solves the problem exactly by KKT bisection on the dual price.
///
/// Runs in `O(n · log(1/tol))`.
pub fn solve(problem: &PowerBudgetProblem) -> CentralizedSolution {
    let n = problem.len();
    debug_assert!(n > 0);

    if problem.is_unconstrained() {
        let allocation: Allocation = problem.utilities().iter().map(|u| u.p_max()).collect();
        return CentralizedSolution {
            allocation,
            lambda: 0.0,
            iterations: 0,
        };
    }

    let total_at = |lambda: f64| -> Watts {
        problem
            .utilities()
            .iter()
            .map(|u| u.argmax_minus_price(lambda))
            .sum()
    };

    // At λ = 0 every node sits at p_max (monotone utilities): total > budget
    // here since the unconstrained case was handled above. Raise λ until the
    // total fits.
    let mut lo = 0.0_f64;
    let mut hi = problem
        .utilities()
        .iter()
        .map(|u| u.slope(u.p_min()))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    // Guard: expand hi until total(hi) ≤ budget (hi at max start-slope
    // already forces everyone to p_min, but keep the loop for safety with
    // degenerate linear utilities).
    let mut expand = 0;
    while total_at(hi) > problem.budget() && expand < 64 {
        hi *= 2.0;
        expand += 1;
    }

    let tol = problem.budget() * BUDGET_REL_TOL;
    let mut iterations = 0usize;
    for _ in 0..200 {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        if total_at(mid) > problem.budget() {
            lo = mid;
        } else {
            hi = mid;
        }
        if total_at(hi) >= problem.budget() - tol {
            break;
        }
    }
    // hi is the smallest bracketed price whose allocation fits the budget.
    let lambda = hi;
    let allocation: Allocation = problem
        .utilities()
        .iter()
        .map(|u| u.argmax_minus_price(lambda))
        .collect();
    CentralizedSolution {
        allocation,
        lambda,
        iterations,
    }
}

/// Convenience wrapper building the problem and solving it.
///
/// # Errors
///
/// Propagates [`AlgError`] from problem construction.
pub fn solve_utilities(
    utilities: Vec<dpc_models::throughput::QuadraticUtility>,
    budget: Watts,
) -> Result<CentralizedSolution, AlgError> {
    let problem = PowerBudgetProblem::new(utilities, budget)?;
    Ok(solve(&problem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn unconstrained_budget_gives_everyone_peak() {
        let p = problem(20, 1e6, 1);
        let s = solve(&p);
        assert_eq!(s.lambda, 0.0);
        for (u, &pw) in p.utilities().iter().zip(s.allocation.powers()) {
            assert_eq!(pw, u.p_max());
        }
    }

    #[test]
    fn solution_is_feasible_and_spends_the_budget() {
        let p = problem(100, 16_000.0, 2);
        let s = solve(&p);
        assert!(p.is_feasible(&s.allocation, Watts(1e-3)));
        // A binding budget is fully spent (no slack at the optimum of a
        // monotone objective).
        let spent = s.allocation.total();
        assert!(
            (p.budget() - spent).abs() < p.budget() * 1e-5,
            "spent {spent} of {}",
            p.budget()
        );
    }

    #[test]
    fn kkt_marginal_utilities_equalize_at_interior_points() {
        let p = problem(50, 8_000.0, 3);
        let s = solve(&p);
        for (u, &pw) in p.utilities().iter().zip(s.allocation.powers()) {
            let interior = pw > u.p_min() + Watts(1e-3) && pw < u.p_max() - Watts(1e-3);
            if interior {
                let slope = u.slope(pw);
                assert!(
                    (slope - s.lambda).abs() < 1e-6,
                    "interior node slope {slope} vs λ {}",
                    s.lambda
                );
            }
        }
    }

    #[test]
    fn beats_every_random_feasible_allocation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = problem(30, 4_800.0, 4);
        let s = solve(&p);
        let best = p.total_utility(&s.allocation);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            // Random feasible point: random box point scaled under budget.
            let raw: Vec<Watts> = p
                .utilities()
                .iter()
                .map(|u| u.p_min() + (u.p_max() - u.p_min()) * rng.gen_range(0.0..1.0))
                .collect();
            let total: Watts = raw.iter().sum();
            let alloc: Allocation = if total > p.budget() {
                let excess = total - p.budget();
                let above_min: Watts = raw
                    .iter()
                    .zip(p.utilities())
                    .map(|(&r, u)| r - u.p_min())
                    .sum();
                let shrink = 1.0 - excess / above_min;
                raw.iter()
                    .zip(p.utilities())
                    .map(|(&r, u)| u.p_min() + (r - u.p_min()) * shrink)
                    .collect()
            } else {
                Allocation::new(raw)
            };
            assert!(p.is_feasible(&alloc, Watts(1e-6)));
            assert!(p.total_utility(&alloc) <= best + best.abs() * 1e-9);
        }
    }

    #[test]
    fn tight_budget_pins_everyone_to_minimum() {
        let c = ClusterBuilder::new(10).seed(5).build();
        let min_total = c.min_total_power();
        let p = PowerBudgetProblem::new(c.utilities(), min_total).unwrap();
        let s = solve(&p);
        for (u, &pw) in p.utilities().iter().zip(s.allocation.powers()) {
            assert!((pw - u.p_min()).abs() < Watts(1e-3), "{pw}");
        }
    }

    #[test]
    fn solve_utilities_wrapper_propagates_errors() {
        assert!(solve_utilities(vec![], Watts(100.0)).is_err());
    }
}
