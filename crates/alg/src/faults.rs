//! Deterministic fault injection for the asynchronous DiBA run.
//!
//! The paper's robustness story (Section 4.2) is that a fully decentralized
//! allocator keeps operating — and keeps the budget — when the datacenter
//! misbehaves: packets are dropped, duplicated, reordered or delayed, and
//! servers crash, reboot, or leave for good. [`crate::diba_async`] models
//! the *timing* imperfections (late activations, delayed delivery); this
//! module adds the *adversarial* ones as a seeded, bit-reproducible
//! [`FaultPlan`] consumed by
//! [`AsyncDibaRun::with_faults`](crate::diba_async::AsyncDibaRun::with_faults).
//!
//! The plan has two halves:
//!
//! * [`LinkFaults`] — per-message stochastic faults, drawn from the plan's
//!   own seeded RNG (a stream separate from the timing RNG, so a benign
//!   plan leaves the fault-free trajectory bitwise untouched);
//! * a round-indexed schedule of [`NodeFault`]s — crash, restart, and
//!   permanent departure events.
//!
//! Fault semantics are chosen so the residual invariant `Σe = Σp − P`
//! stays *exactly* accounted at all times (see DESIGN.md, "Fault model &
//! recovery"): a dropped message is rolled back by its sender (reliable
//! transport reports the failure after [`LinkFaults::rtt`] rounds), a
//! duplicate re-delivers only the stale gossip snapshot (receivers
//! deduplicate the slack payload), and a dead node's residual-and-power
//! mass is held in escrow until its neighbors detect the silence and
//! re-absorb the freed budget.
//!
//! ```
//! use dpc_alg::diba::DibaConfig;
//! use dpc_alg::diba_async::{AsyncConfig, AsyncDibaRun};
//! use dpc_alg::faults::{FaultPlan, LinkFaults, NodeFaultKind};
//! use dpc_alg::problem::PowerBudgetProblem;
//! use dpc_models::{units::Watts, workload::ClusterBuilder};
//! use dpc_topology::Graph;
//!
//! # fn main() -> Result<(), dpc_alg::problem::AlgError> {
//! let cluster = ClusterBuilder::new(16).seed(1).build();
//! let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(2_720.0))?;
//! // 10 % message loss, and node 5 crashes at round 200.
//! let plan = FaultPlan::with_link(7, LinkFaults { drop: 0.10, ..LinkFaults::none() })
//!     .and(200, 5, NodeFaultKind::Crash);
//! let mut run = AsyncDibaRun::with_faults(
//!     problem, Graph::ring_with_chords(16, 2),
//!     DibaConfig::default(), AsyncConfig::default(), plan)?;
//! run.run(1_000);
//! // Feasible throughout, crash detected, budget re-absorbed exactly.
//! assert!(run.total_power() <= Watts(2_720.0 + 1e-6));
//! assert_eq!(run.live_count(), 15);
//! assert!(run.conservation_drift() < 1e-6);
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Per-message stochastic link faults. All probabilities are per message
/// and independent; every draw comes from the plan's seeded RNG, so a run
/// is bit-reproducible given the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is dropped. The transfer it carried is rolled
    /// back by the sender [`LinkFaults::rtt`] rounds later (reliable
    /// transport reports the delivery failure), so no slack mass is ever
    /// silently destroyed.
    pub drop: f64,
    /// Probability a message is duplicated. The duplicate arrives later
    /// (up to [`LinkFaults::reorder_max`] extra rounds) carrying only the
    /// — by then stale — residual snapshot: receivers deduplicate the
    /// slack payload, but sequence-number-free gossip state regresses.
    pub duplicate: f64,
    /// Probability a message is reordered: it picks up an extra uniform
    /// delay of `1..=reorder_max` rounds and may overtake or be overtaken
    /// by its neighbors.
    pub reorder: f64,
    /// Bound (rounds) on the extra delay of reordered messages and
    /// duplicates.
    pub reorder_max: usize,
    /// Rounds until a failed delivery is reported back to the sender
    /// (dropped messages and messages addressed to dead nodes bounce after
    /// this many rounds).
    pub rtt: usize,
}

impl LinkFaults {
    /// No link faults at all.
    pub fn none() -> LinkFaults {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_max: 4,
            rtt: 3,
        }
    }

    /// `true` when no message can ever be faulted.
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::none()
    }
}

/// What happens to a node at a scheduled round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node powers off silently: its draw goes to zero, its residual
    /// mass moves to escrow, and it stops sending. Neighbors only learn of
    /// the crash through silence (see [`FaultPlan::detect_after`]).
    Crash,
    /// A crashed node reboots: it re-admits itself at its idle power by
    /// consuming its own escrowed slack, topped up by neighbor donations
    /// when the escrow was already re-absorbed. A reboot that cannot
    /// gather enough slack is retried every round until it can.
    Restart,
    /// The node leaves the cluster for good, gracefully: it donates its
    /// residual-and-power mass `e − p` to its live neighbors in a farewell
    /// message, so the budget it occupied is re-absorbed immediately.
    Depart,
}

impl fmt::Display for NodeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeFaultKind::Crash => "crash",
            NodeFaultKind::Restart => "restart",
            NodeFaultKind::Depart => "depart",
        })
    }
}

/// One scheduled node event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// The asynchronous round at which the event fires (rounds count from
    /// 1; round 0 is the initial state).
    pub round: usize,
    /// The affected node.
    pub node: usize,
    /// What happens.
    pub kind: NodeFaultKind,
}

/// Health of a node under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Operating normally.
    Alive,
    /// Powered off by a [`NodeFaultKind::Crash`]; may restart.
    Crashed,
    /// Left permanently via [`NodeFaultKind::Depart`].
    Departed,
}

/// A complete, seeded fault-injection plan: link-fault rates, a node event
/// schedule, and the failure-detection timeout.
///
/// A benign plan (the [`FaultPlan::none`] default) injects nothing and is
/// guaranteed not to perturb the fault-free trajectory — the regression
/// test `fault_free_regression` pins that bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault-draw RNG (independent of the timing seed in
    /// [`crate::diba_async::AsyncConfig`]).
    pub seed: u64,
    /// Stochastic per-message link faults.
    pub link: LinkFaults,
    /// Scheduled node events, in any order (scanned per round).
    pub schedule: Vec<NodeFault>,
    /// Neighbor-timeout failure detection: a node that has not been heard
    /// from for this many rounds is declared dead and its link pruned
    /// (and, if it really is dead, its escrowed budget re-absorbed).
    /// `None` disables detection entirely.
    pub detect_after: Option<usize>,
}

impl FaultPlan {
    /// The benign plan: no link faults, no node events, no detection.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            link: LinkFaults::none(),
            schedule: Vec::new(),
            detect_after: None,
        }
    }

    /// A plan with the given seed and link-fault rates, failure detection
    /// at 40 silent rounds, and an empty node schedule.
    pub fn with_link(seed: u64, link: LinkFaults) -> FaultPlan {
        FaultPlan {
            seed,
            link,
            schedule: Vec::new(),
            detect_after: Some(40),
        }
    }

    /// Appends a node event to the schedule (builder style).
    pub fn and(mut self, round: usize, node: usize, kind: NodeFaultKind) -> FaultPlan {
        self.schedule.push(NodeFault { round, node, kind });
        self
    }

    /// Overrides the failure-detection timeout (builder style).
    pub fn detect_after(mut self, rounds: Option<usize>) -> FaultPlan {
        self.detect_after = rounds;
        self
    }

    /// `true` when the plan can never perturb a run: no link faults, no
    /// node events, and no failure detection (so not even a false-positive
    /// pruning can occur).
    pub fn is_benign(&self) -> bool {
        self.link.is_benign() && self.schedule.is_empty() && self.detect_after.is_none()
    }

    /// Validates the plan against a cluster of `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field: a node id out
    /// of range, a probability outside `[0, 1)`, or a zero `reorder_max` /
    /// `rtt` with a nonzero matching rate.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.link.drop),
            ("duplicate", self.link.duplicate),
            ("reorder", self.link.reorder),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("link fault `{name}` = {p} not in [0, 1)"));
            }
        }
        if (self.link.reorder > 0.0 || self.link.duplicate > 0.0) && self.link.reorder_max == 0 {
            return Err("reorder_max must be positive when reorder/duplicate > 0".into());
        }
        if self.link.rtt == 0 {
            return Err("rtt must be at least 1 round".into());
        }
        for f in &self.schedule {
            if f.node >= n {
                return Err(format!(
                    "scheduled {} at round {} targets node {} of {n}",
                    f.kind, f.round, f.node
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The fate of one message under a plan's link faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// The message never arrives; the sender rolls the transfer back after
    /// [`LinkFaults::rtt`] rounds.
    pub dropped: bool,
    /// A stale, transfer-free duplicate is delivered `dup_lag` extra
    /// rounds later (0 = no duplicate).
    pub dup_lag: usize,
    /// Extra delay from reordering (0 = in order).
    pub extra_delay: usize,
}

impl MessageFate {
    /// The fate of an unfaulted message.
    pub fn clean() -> MessageFate {
        MessageFate {
            dropped: false,
            dup_lag: 0,
            extra_delay: 0,
        }
    }
}

/// The seeded sampler turning [`LinkFaults`] rates into per-message
/// [`MessageFate`]s. Owns its own RNG stream so the timing RNG of the
/// asynchronous run is never perturbed.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    link: LinkFaults,
    rng: StdRng,
    benign: bool,
}

impl FaultSampler {
    /// Builds the sampler for a plan.
    pub fn new(plan: &FaultPlan) -> FaultSampler {
        FaultSampler {
            link: plan.link,
            rng: StdRng::seed_from_u64(plan.seed),
            benign: plan.link.is_benign(),
        }
    }

    /// Draws the fate of the next message. Consumes no randomness at all
    /// when the link is benign, so a benign plan is draw-for-draw inert.
    pub fn fate(&mut self) -> MessageFate {
        if self.benign {
            return MessageFate::clean();
        }
        let dropped = self.link.drop > 0.0 && self.rng.gen_range(0.0..1.0) < self.link.drop;
        let dup_lag = if !dropped
            && self.link.duplicate > 0.0
            && self.rng.gen_range(0.0..1.0) < self.link.duplicate
        {
            self.rng.gen_range(1..=self.link.reorder_max.max(1))
        } else {
            0
        };
        let extra_delay = if !dropped
            && self.link.reorder > 0.0
            && self.rng.gen_range(0.0..1.0) < self.link.reorder
        {
            self.rng.gen_range(1..=self.link.reorder_max.max(1))
        } else {
            0
        };
        MessageFate {
            dropped,
            dup_lag,
            extra_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_is_benign() {
        let plan = FaultPlan::none();
        assert!(plan.is_benign());
        assert!(plan.validate(10).is_ok());
        let mut s = FaultSampler::new(&plan);
        for _ in 0..100 {
            assert_eq!(s.fate(), MessageFate::clean());
        }
    }

    #[test]
    fn builder_composes_schedule_and_detection() {
        let plan = FaultPlan::with_link(
            7,
            LinkFaults {
                drop: 0.1,
                ..LinkFaults::none()
            },
        )
        .and(50, 3, NodeFaultKind::Crash)
        .and(200, 3, NodeFaultKind::Restart)
        .detect_after(Some(25));
        assert!(!plan.is_benign());
        assert_eq!(plan.schedule.len(), 2);
        assert_eq!(plan.detect_after, Some(25));
        assert!(plan.validate(10).is_ok());
        assert!(plan.validate(3).is_err(), "node 3 out of range for n=3");
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut plan = FaultPlan::none();
        plan.link.drop = 1.5;
        assert!(plan.validate(4).unwrap_err().contains("drop"));
        plan.link.drop = 0.0;
        plan.link.rtt = 0;
        assert!(plan.validate(4).unwrap_err().contains("rtt"));
        plan.link.rtt = 3;
        plan.link.reorder = 0.2;
        plan.link.reorder_max = 0;
        assert!(plan.validate(4).unwrap_err().contains("reorder_max"));
    }

    #[test]
    fn sampler_is_seed_deterministic_and_rates_bite() {
        let plan = FaultPlan::with_link(
            42,
            LinkFaults {
                drop: 0.3,
                duplicate: 0.2,
                reorder: 0.25,
                reorder_max: 4,
                rtt: 3,
            },
        );
        let mut a = FaultSampler::new(&plan);
        let mut b = FaultSampler::new(&plan);
        let fates: Vec<MessageFate> = (0..2_000).map(|_| a.fate()).collect();
        assert!(fates
            .iter()
            .eq((0..2_000).map(|_| b.fate()).collect::<Vec<_>>().iter()));
        let drops = fates.iter().filter(|f| f.dropped).count();
        let dups = fates.iter().filter(|f| f.dup_lag > 0).count();
        let reorders = fates.iter().filter(|f| f.extra_delay > 0).count();
        assert!((400..800).contains(&drops), "drop rate off: {drops}");
        assert!(dups > 100, "duplicates never fired: {dups}");
        assert!(reorders > 100, "reorders never fired: {reorders}");
        for f in &fates {
            assert!(f.extra_delay <= 4 && f.dup_lag <= 4);
            assert!(!(f.dropped && (f.dup_lag > 0 || f.extra_delay > 0)));
        }
    }
}
