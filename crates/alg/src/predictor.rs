//! Throughput predictors (Chapter 3, Eqs. 3.7–3.8 and Table 3.2).
//!
//! During runtime the budgeter only sees each server's *current* operating
//! point — power cap `p̂`, throughput `τ(p̂)`, and performance counters —
//! and must predict the throughput at every other cap. The paper's
//! predictor models each coefficient of a quadratic `τ(p) = a₁ + a₂p + a₃p²`
//! as a function of two features: the current throughput-per-watt
//! `τ(p̂)/p̂` (Fig. 3.8, linear) and the LLC miss rate (Fig. 3.7,
//! exponential):
//!
//! ```text
//! a_j = β_{j,1} + β_{j,2}·τ(p̂)/p̂ + β_{j,3}·exp(β_{j,4}·LLC)
//! ```
//!
//! Five ablations/prior models are implemented for the Table 3.2
//! comparison. All models are *anchored*: the predicted curve is rescaled
//! to pass through the observed `(p̂, τ(p̂))`, as a runtime predictor must.

use crate::problem::AlgError;
use dpc_models::fitting::solve_linear;
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use std::fmt;

/// One training/evaluation record: a workload observed at its current cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Current power cap `p̂`.
    pub cap: Watts,
    /// Measured throughput at the current cap.
    pub throughput: f64,
    /// LLC misses per cycle.
    pub llc: f64,
}

impl Observation {
    /// The throughput-per-watt feature `τ(p̂)/p̂`.
    pub fn tp(&self) -> f64 {
        self.throughput / self.cap.0.max(1e-12)
    }
}

/// A labeled training record: the observation plus the workload's true
/// throughput curve (known offline from characterization sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingRecord {
    /// The runtime-visible observation.
    pub observation: Observation,
    /// Ground-truth curve the label coefficients come from.
    pub truth: QuadraticUtility,
}

/// The predictor families compared in Table 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// The paper's model: quadratic τ(p), coefficients from TP + exp(LLC).
    QuadraticLlcTp,
    /// Linear τ(p) with coefficients from TP + LLC (Rountree-style).
    LinearLlcTp,
    /// Linear τ(p) from the TP feature only.
    LinearTp,
    /// Quadratic τ(p) from the exp(LLC) feature only.
    ExponentialLlc,
    /// Prior work: one global cubic shape for all workloads.
    PreviousCubic,
    /// Prior work: one global linear shape for all workloads.
    PreviousLinear,
}

impl PredictorKind {
    /// All kinds in Table 3.2 order.
    pub const ALL: [PredictorKind; 6] = [
        PredictorKind::QuadraticLlcTp,
        PredictorKind::LinearLlcTp,
        PredictorKind::LinearTp,
        PredictorKind::ExponentialLlc,
        PredictorKind::PreviousCubic,
        PredictorKind::PreviousLinear,
    ];
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredictorKind::QuadraticLlcTp => "quadratic-LLC+TP",
            PredictorKind::LinearLlcTp => "linear-LLC+TP",
            PredictorKind::LinearTp => "linear-TP",
            PredictorKind::ExponentialLlc => "exponential-LLC",
            PredictorKind::PreviousCubic => "previous-cubic",
            PredictorKind::PreviousLinear => "previous-linear",
        };
        f.write_str(s)
    }
}

/// Degree of the predicted polynomial per kind.
fn shape_degree(kind: PredictorKind) -> usize {
    match kind {
        PredictorKind::QuadraticLlcTp | PredictorKind::ExponentialLlc => 2,
        PredictorKind::LinearLlcTp | PredictorKind::LinearTp => 1,
        PredictorKind::PreviousCubic => 3,
        PredictorKind::PreviousLinear => 1,
    }
}

/// Feature vector for coefficient regression (empty ⇒ global shape model).
fn features(kind: PredictorKind, obs: &Observation, beta4: f64) -> Vec<f64> {
    match kind {
        PredictorKind::QuadraticLlcTp => vec![1.0, obs.tp(), (beta4 * obs.llc).exp()],
        PredictorKind::LinearLlcTp => vec![1.0, obs.tp(), obs.llc],
        PredictorKind::LinearTp => vec![1.0, obs.tp()],
        PredictorKind::ExponentialLlc => vec![1.0, (beta4 * obs.llc).exp()],
        PredictorKind::PreviousCubic | PredictorKind::PreviousLinear => vec![1.0],
    }
}

/// A trained throughput predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPredictor {
    kind: PredictorKind,
    /// Per-coefficient regression weights: `betas[j]` maps the feature
    /// vector to curve coefficient `a_{j}`.
    betas: Vec<Vec<f64>>,
    /// Exponential LLC rate β₄ (0 for kinds that do not use it).
    beta4: f64,
}

impl ThroughputPredictor {
    /// Fits a predictor of the given kind on labeled records.
    ///
    /// For the exponential-LLC kinds, β₄ is selected by grid search over
    /// `[-60, 0]` to minimize training SSE of the coefficient regressions —
    /// the offline training of Section 3.2.2.
    ///
    /// # Errors
    ///
    /// [`AlgError::DidNotConverge`] when the training set is too small or
    /// degenerate for the regression.
    pub fn train(
        kind: PredictorKind,
        records: &[TrainingRecord],
    ) -> Result<ThroughputPredictor, AlgError> {
        let probe = Observation {
            cap: Watts(1.0),
            throughput: 1.0,
            llc: 0.0,
        };
        let width = features(kind, &probe, -1.0).len();
        if records.len() < width + 1 {
            return Err(AlgError::DidNotConverge {
                iterations: records.len(),
            });
        }
        let uses_beta4 = matches!(
            kind,
            PredictorKind::QuadraticLlcTp | PredictorKind::ExponentialLlc
        );
        let degree = shape_degree(kind);

        let mut best: Option<(f64, Vec<Vec<f64>>, f64)> = None;
        let grid: Vec<f64> = if uses_beta4 {
            (1..=30).map(|k| -2.0 * k as f64).collect()
        } else {
            vec![0.0]
        };
        for &beta4 in &grid {
            match fit_betas(kind, records, beta4, degree, width) {
                Some((sse, betas)) => match &best {
                    Some((best_sse, _, _)) if *best_sse <= sse => {}
                    _ => best = Some((sse, betas, beta4)),
                },
                None => continue,
            }
        }
        let (_, betas, beta4) = best.ok_or(AlgError::DidNotConverge {
            iterations: records.len(),
        })?;
        Ok(ThroughputPredictor { kind, betas, beta4 })
    }

    /// The predictor family.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Predicts throughput at power `p` from a runtime observation,
    /// anchored through the observed point.
    pub fn predict(&self, obs: &Observation, p: Watts) -> f64 {
        let x = features(self.kind, obs, self.beta4);
        let coeff = |j: usize| -> f64 { self.betas[j].iter().zip(&x).map(|(b, f)| b * f).sum() };
        let shape = |pw: f64| -> f64 {
            (0..self.betas.len())
                .map(|j| coeff(j) * pw.powi(j as i32))
                .sum()
        };
        let at_anchor = shape(obs.cap.0);
        if at_anchor.abs() < 1e-12 {
            return obs.throughput;
        }
        obs.throughput * shape(p.0) / at_anchor
    }

    /// Mean absolute relative prediction error over labeled records,
    /// evaluated at every probe cap (the Table 3.2 metric).
    pub fn evaluate(&self, records: &[TrainingRecord], probes: &[Watts]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for r in records {
            for &p in probes {
                let truth = r.truth.value(p);
                if truth.abs() < 1e-12 {
                    continue;
                }
                let predicted = self.predict(&r.observation, p);
                total += ((predicted - truth) / truth).abs();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Fits the per-coefficient OLS regressions for a fixed β₄; returns the
/// total SSE over coefficients and the weight matrix.
fn fit_betas(
    kind: PredictorKind,
    records: &[TrainingRecord],
    beta4: f64,
    degree: usize,
    width: usize,
) -> Option<(f64, Vec<Vec<f64>>)> {
    // Labels: the true curve's polynomial coefficients, truncated/refit to
    // the model degree when it differs from 2.
    let labels: Vec<Vec<f64>> = records
        .iter()
        .map(|r| {
            let (a, b, c) = r.truth.coefficients();
            match degree {
                1 => {
                    // Best linear approximation over the box: secant.
                    let (lo, hi) = (r.truth.p_min(), r.truth.p_max());
                    let slope = (r.truth.value(hi) - r.truth.value(lo)) / (hi - lo).0;
                    vec![r.truth.value(lo) - slope * lo.0, slope]
                }
                2 => vec![a, b, c],
                _ => vec![a, b, c, 0.0],
            }
        })
        .collect();

    let mut sse_total = 0.0;
    let mut betas = Vec::with_capacity(degree + 1);
    for j in 0..=degree {
        // Normal equations for coefficient j.
        let mut ata = vec![vec![0.0; width]; width];
        let mut atb = vec![0.0; width];
        for (r, label) in records.iter().zip(&labels) {
            let x = features(kind, &r.observation, beta4);
            let y = label[j];
            for a in 0..width {
                atb[a] += x[a] * y;
                for b in 0..width {
                    ata[a][b] += x[a] * x[b];
                }
            }
        }
        // Ridge for conditioning.
        for (a, row) in ata.iter_mut().enumerate() {
            row[a] += 1e-9;
        }
        let w = solve_linear(ata, atb).ok()?;
        for (r, label) in records.iter().zip(&labels) {
            let x = features(kind, &r.observation, beta4);
            let pred: f64 = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum();
            sse_total += (pred - label[j]).powi(2);
        }
        betas.push(w);
    }
    Some((sse_total, betas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::benchmark::{PARSEC, SPEC_CPU2006};
    use dpc_models::characterization::learn_utility;
    use dpc_models::pmc::PmcSignature;
    use dpc_models::power::ServerSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds the Chapter 3 characterization database: SPEC+PARSEC
    /// workloads, several jittered instances each, observed at a random cap.
    fn records(seed: u64, instances: usize) -> Vec<TrainingRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let server = ServerSpec::dell_c1100();
        let mut out = Vec::new();
        for spec in SPEC_CPU2006.iter().chain(&PARSEC) {
            for _ in 0..instances {
                let (truth, _) = learn_utility(spec, &server, 0.08, 0.0, &mut rng);
                let cap = Watts(rng.gen_range(156.0..196.0));
                let pmc = PmcSignature::for_spec(spec).sample(0.03, &mut rng);
                let observation = Observation {
                    cap,
                    throughput: truth.value(cap),
                    llc: pmc.llc_misses_per_cycle(),
                };
                out.push(TrainingRecord { observation, truth });
            }
        }
        out
    }

    fn probes() -> Vec<Watts> {
        (0..8).map(|j| Watts(158.0 + 6.0 * j as f64)).collect()
    }

    #[test]
    fn all_kinds_train_and_predict_finite_values() {
        let train = records(1, 3);
        for kind in PredictorKind::ALL {
            let p = ThroughputPredictor::train(kind, &train).unwrap();
            let err = p.evaluate(&train, &probes());
            assert!(err.is_finite() && err >= 0.0, "{kind}: {err}");
            assert!(err < 0.25, "{kind}: error {err} implausibly large");
        }
    }

    #[test]
    fn papers_model_beats_prior_models_out_of_sample() {
        let train = records(2, 4);
        let test = records(77, 2);
        let err = |kind| {
            ThroughputPredictor::train(kind, &train)
                .unwrap()
                .evaluate(&test, &probes())
        };
        let quad = err(PredictorKind::QuadraticLlcTp);
        let prev_lin = err(PredictorKind::PreviousLinear);
        let prev_cub = err(PredictorKind::PreviousCubic);
        assert!(quad < prev_lin, "quad {quad} vs previous-linear {prev_lin}");
        assert!(quad < prev_cub, "quad {quad} vs previous-cubic {prev_cub}");
    }

    #[test]
    fn anchoring_makes_prediction_exact_at_the_observed_cap() {
        let train = records(3, 3);
        let p = ThroughputPredictor::train(PredictorKind::QuadraticLlcTp, &train).unwrap();
        for r in train.iter().take(10) {
            let at_cap = p.predict(&r.observation, r.observation.cap);
            assert!((at_cap - r.observation.throughput).abs() < 1e-9);
        }
    }

    #[test]
    fn too_few_records_error() {
        let train = records(4, 3);
        let few = &train[..2];
        assert!(matches!(
            ThroughputPredictor::train(PredictorKind::QuadraticLlcTp, few),
            Err(AlgError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn observation_tp_feature() {
        let o = Observation {
            cap: Watts(160.0),
            throughput: 0.8,
            llc: 0.01,
        };
        assert!((o.tp() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn kind_display_matches_table_3_2_names() {
        assert_eq!(
            PredictorKind::QuadraticLlcTp.to_string(),
            "quadratic-LLC+TP"
        );
        assert_eq!(PredictorKind::PreviousLinear.to_string(), "previous-linear");
        assert_eq!(PredictorKind::ALL.len(), 6);
    }
}
