//! The power-budget allocation problem (Eqs. 4.1–4.3) and its solutions.
//!
//! ```text
//! max Σ r_i(p_i)   s.t.  Σ p_i ≤ P,   p_i ∈ [p_min_i, p_max_i]
//! ```

use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use std::fmt;

/// Error from the allocation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgError {
    /// The budget cannot cover every server's idle power.
    InfeasibleBudget {
        /// Requested total budget.
        budget: Watts,
        /// Sum of lower power bounds.
        min_required: Watts,
    },
    /// The problem has no servers.
    EmptyProblem,
    /// A companion structure (graph, allocation) has the wrong size.
    DimensionMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// An iterative solver hit its iteration budget before converging.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
    },
    /// A configuration knob holds a value the engines cannot honor (for
    /// example `threads = Fixed(0)`, a non-finite step size, or a negative
    /// fault time). Caught at construction so it cannot surface later as a
    /// panic deep inside a run.
    InvalidConfig {
        /// Human-readable description of the offending knob and value.
        what: String,
    },
    /// An operation addressed a node index the cluster does not have (for
    /// example a scenario event naming server 12 in an 8-server replay).
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// The cluster size it was checked against.
        nodes: usize,
    },
}

impl fmt::Display for AlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgError::InfeasibleBudget {
                budget,
                min_required,
            } => write!(
                f,
                "budget {budget} below the minimum enforceable total {min_required}"
            ),
            AlgError::EmptyProblem => f.write_str("problem has no servers"),
            AlgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            AlgError::DidNotConverge { iterations } => {
                write!(f, "did not converge within {iterations} iterations")
            }
            AlgError::InvalidConfig { what } => {
                write!(f, "invalid configuration: {what}")
            }
            AlgError::UnknownNode { node, nodes } => {
                write!(f, "unknown node {node}: the cluster has {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for AlgError {}

/// An instance of the cluster power-budgeting problem.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBudgetProblem {
    utilities: Vec<QuadraticUtility>,
    budget: Watts,
}

impl PowerBudgetProblem {
    /// Builds a problem, checking feasibility (`budget ≥ Σ p_min`).
    ///
    /// # Errors
    ///
    /// [`AlgError::EmptyProblem`] for zero servers,
    /// [`AlgError::InfeasibleBudget`] when the budget cannot cover idle
    /// power.
    pub fn new(
        utilities: Vec<QuadraticUtility>,
        budget: Watts,
    ) -> Result<PowerBudgetProblem, AlgError> {
        if utilities.is_empty() {
            return Err(AlgError::EmptyProblem);
        }
        let min_required: Watts = utilities.iter().map(|u| u.p_min()).sum();
        if budget < min_required {
            return Err(AlgError::InfeasibleBudget {
                budget,
                min_required,
            });
        }
        Ok(PowerBudgetProblem { utilities, budget })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// `true` when the problem has no servers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// The per-server utility functions.
    pub fn utilities(&self) -> &[QuadraticUtility] {
        &self.utilities
    }

    /// The utility of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn utility(&self, i: usize) -> &QuadraticUtility {
        &self.utilities[i]
    }

    /// Total power budget `P`.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Returns a copy with a different budget.
    ///
    /// # Errors
    ///
    /// [`AlgError::InfeasibleBudget`] when the new budget is infeasible.
    pub fn with_budget(&self, budget: Watts) -> Result<PowerBudgetProblem, AlgError> {
        PowerBudgetProblem::new(self.utilities.clone(), budget)
    }

    /// Sum of lower power bounds.
    pub fn min_total(&self) -> Watts {
        self.utilities.iter().map(|u| u.p_min()).sum()
    }

    /// Sum of upper power bounds.
    pub fn max_total(&self) -> Watts {
        self.utilities.iter().map(|u| u.p_max()).sum()
    }

    /// `true` when the budget exceeds `Σ p_max`, i.e. every server can run
    /// uncapped.
    pub fn is_unconstrained(&self) -> bool {
        self.budget >= self.max_total()
    }

    /// Total utility of an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the allocation length differs from the problem size.
    pub fn total_utility(&self, allocation: &Allocation) -> f64 {
        assert_eq!(allocation.len(), self.len(), "allocation size mismatch");
        self.utilities
            .iter()
            .zip(allocation.powers())
            .map(|(u, &p)| u.value(p))
            .sum()
    }

    /// Per-server ANPs of an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the allocation length differs from the problem size.
    pub fn anps(&self, allocation: &Allocation) -> Vec<f64> {
        assert_eq!(allocation.len(), self.len(), "allocation size mismatch");
        self.utilities
            .iter()
            .zip(allocation.powers())
            .map(|(u, &p)| u.anp(p))
            .collect()
    }

    /// Checks that an allocation respects every box and the total budget
    /// within `tol` watts.
    pub fn is_feasible(&self, allocation: &Allocation, tol: Watts) -> bool {
        if allocation.len() != self.len() {
            return false;
        }
        let boxes_ok = self
            .utilities
            .iter()
            .zip(allocation.powers())
            .all(|(u, &p)| p >= u.p_min() - tol && p <= u.p_max() + tol);
        boxes_ok && allocation.total() <= self.budget + tol
    }
}

/// A per-server power-cap assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    powers: Vec<Watts>,
}

impl Allocation {
    /// Wraps a power vector.
    pub fn new(powers: Vec<Watts>) -> Allocation {
        Allocation { powers }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// The power caps in server order.
    pub fn powers(&self) -> &[Watts] {
        &self.powers
    }

    /// Power cap of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn power(&self, i: usize) -> Watts {
        self.powers[i]
    }

    /// Total allocated power.
    pub fn total(&self) -> Watts {
        self.powers.iter().sum()
    }

    /// Largest absolute per-server difference to another allocation.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn max_abs_diff(&self, other: &Allocation) -> Watts {
        assert_eq!(self.len(), other.len(), "allocation size mismatch");
        self.powers
            .iter()
            .zip(other.powers())
            .map(|(&a, &b)| (a - b).abs())
            .fold(Watts::ZERO, Watts::max)
    }
}

impl FromIterator<Watts> for Allocation {
    fn from_iter<I: IntoIterator<Item = Watts>>(iter: I) -> Allocation {
        Allocation::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(1).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn rejects_empty_and_infeasible() {
        assert_eq!(
            PowerBudgetProblem::new(vec![], Watts(100.0)),
            Err(AlgError::EmptyProblem)
        );
        let c = ClusterBuilder::new(10).build();
        let err = PowerBudgetProblem::new(c.utilities(), Watts(10.0)).unwrap_err();
        assert!(matches!(err, AlgError::InfeasibleBudget { .. }));
    }

    #[test]
    fn totals_and_unconstrained_flag() {
        let p = problem(10, 1700.0);
        assert_eq!(p.len(), 10);
        assert!(p.min_total() < Watts(1700.0));
        assert!(!p.is_unconstrained());
        let loose = p.with_budget(Watts(10_000.0)).unwrap();
        assert!(loose.is_unconstrained());
    }

    #[test]
    fn utility_and_anps_evaluate_elementwise() {
        let p = problem(5, 900.0);
        let alloc: Allocation = p.utilities().iter().map(|u| u.p_max()).collect();
        let total = p.total_utility(&alloc);
        let by_hand: f64 = p.utilities().iter().map(|u| u.peak()).sum();
        assert!((total - by_hand).abs() < 1e-9);
        assert!(p.anps(&alloc).iter().all(|&a| (a - 1.0).abs() < 1e-12));
    }

    #[test]
    fn feasibility_checks_boxes_and_budget() {
        let p = problem(4, 700.0);
        let at_min: Allocation = p.utilities().iter().map(|u| u.p_min()).collect();
        assert!(p.is_feasible(&at_min, Watts(1e-9)));

        let over: Allocation = p
            .utilities()
            .iter()
            .map(|u| u.p_max() + Watts(1.0))
            .collect();
        assert!(!p.is_feasible(&over, Watts(1e-9)));

        let too_much: Allocation = p.utilities().iter().map(|u| u.p_max()).collect();
        assert!(!p.is_feasible(&too_much, Watts(1e-9))); // 4·200 > 700

        let wrong_size = Allocation::new(vec![Watts(150.0)]);
        assert!(!p.is_feasible(&wrong_size, Watts(1e-9)));
    }

    #[test]
    fn allocation_helpers() {
        let a = Allocation::new(vec![Watts(1.0), Watts(2.0)]);
        let b = Allocation::new(vec![Watts(1.5), Watts(1.0)]);
        assert_eq!(a.total(), Watts(3.0));
        assert_eq!(a.max_abs_diff(&b), Watts(1.0));
        assert_eq!(a.power(1), Watts(2.0));
    }
}
