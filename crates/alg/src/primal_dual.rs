//! Primal-dual decomposition (Algorithm 3).
//!
//! The conventional distributed baseline: a central coordinator iterates the
//! dual price `λ⁺ = [λ − ε(P − Σ pᵢ)]⁺` (Eq. 4.5) while every server solves
//! its local problem `pᵢ = argmax rᵢ(p) − λ·p` (Eq. 4.6) in closed form.
//! Scalable in computation but every iteration funnels `2N` packets through
//! the coordinator — the communication bottleneck Table 4.2 quantifies.

use crate::centralized;
use crate::exec::{
    chunk_count, shard_bounds_aligned, Backend, Engine, Precision, SharedSlice, Threads,
    REDUCE_CHUNK,
};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::units::Watts;

/// Tuning knobs for the primal-dual iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimalDualConfig {
    /// Dual step size ε; `None` picks the Newton-like default
    /// `1 / Σ 1/(2|cᵢ|)` from the problem's curvatures.
    pub step: Option<f64>,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence threshold: stop when the iterate is feasible and its
    /// utility is within this relative gap of the centralized optimum
    /// (the paper uses 1 %, Eq. 4.11).
    pub rel_tol: f64,
    /// Worker policy for the per-node primal responses: [`Threads::Auto`]
    /// (the default) applies the measured serial↔parallel cutover,
    /// `Threads::Fixed(1)` forces the inline serial path. Results are
    /// bitwise identical for every worker count (the reductions are
    /// fixed-chunk — see [`crate::exec`]).
    pub threads: Threads,
    /// Numerical tier of the primal response: [`Precision::Reference`]
    /// (the default) sums each reduction chunk in strict program order;
    /// [`Precision::Fast`] accumulates each chunk over 4 independent
    /// lanes (vectorizable, still a fixed reassociation — results remain
    /// identical for every worker count, they just differ from the
    /// reference tier by rounding).
    pub precision: Precision,
}

impl Default for PrimalDualConfig {
    fn default() -> Self {
        PrimalDualConfig {
            step: None,
            max_iterations: 500,
            rel_tol: 0.01,
            threads: Threads::Auto,
            precision: Precision::Reference,
        }
    }
}

/// One recorded iteration of the dual ascent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimalDualTrace {
    /// Dual price before the primal response.
    pub lambda: f64,
    /// Total power of the primal response.
    pub total_power: Watts,
    /// Total utility of the primal response.
    pub utility: f64,
}

/// Outcome of the primal-dual solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimalDualResult {
    /// Final (feasible) allocation.
    pub allocation: Allocation,
    /// Final dual price.
    pub lambda: f64,
    /// Iterations executed until the convergence test fired (Eq. 4.11).
    pub iterations: usize,
    /// Whether the convergence test fired within the iteration budget.
    pub converged: bool,
    /// Per-iteration trace.
    pub history: Vec<PrimalDualTrace>,
}

impl PrimalDualResult {
    /// The dual state worth carrying into a re-solve after the instance
    /// changes — pass it to [`solve_warm`].
    pub fn warm_start(&self) -> DualWarmStart {
        DualWarmStart {
            lambda: self.lambda,
        }
    }
}

/// Dual state carried across primal-dual re-solves. The price λ moves
/// little under a small perturbation of the instance, so seeding the next
/// solve from the previous λ (instead of 0) skips most of the bold-driver
/// search — the coordinator-side analogue of DiBA's warm residual state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualWarmStart {
    /// The dual price to start the ascent from (≥ 0).
    pub lambda: f64,
}

fn default_step(problem: &PowerBudgetProblem) -> f64 {
    // Newton scale of the dual: dΣp/dλ = Σ 1/(2cᵢ) over interior nodes.
    let sensitivity: f64 = problem
        .utilities()
        .iter()
        .filter_map(|u| {
            let (_, _, c) = u.coefficients();
            (c < 0.0).then(|| 1.0 / (2.0 * c.abs()))
        })
        .sum();
    if sensitivity > 0.0 {
        1.0 / sensitivity
    } else {
        // All-linear degenerate problem: relate price scale to power scale.
        let slope = problem
            .utilities()
            .iter()
            .map(|u| u.slope(u.p_min()))
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        slope / (problem.budget().0.max(1.0))
    }
}

/// Runs Algorithm 3, computing the convergence reference internally.
///
/// The reported `iterations` is the first iteration whose primal response is
/// feasible and within `rel_tol` of the centralized optimum — the paper's
/// convergence accounting for Table 4.2. The returned allocation is that
/// iterate (or, on non-convergence, the best feasible iterate seen).
pub fn solve(problem: &PowerBudgetProblem, config: &PrimalDualConfig) -> PrimalDualResult {
    let reference = centralized::solve(problem);
    let optimal_utility = problem.total_utility(&reference.allocation);
    solve_with_reference(problem, config, optimal_utility)
}

/// Runs Algorithm 3 warm-started from a previous solve's dual state: the
/// ascent begins at `warm.lambda` instead of 0, so a re-solve after a small
/// instance change (budget trim, one server's curve re-fitted) typically
/// converges in one or two iterations. The convergence reference is
/// computed internally, exactly as in [`solve`].
///
/// # Errors
///
/// [`AlgError::InvalidConfig`] when `warm.lambda` is non-finite or
/// negative.
pub fn solve_warm(
    problem: &PowerBudgetProblem,
    config: &PrimalDualConfig,
    warm: &DualWarmStart,
) -> Result<PrimalDualResult, AlgError> {
    if !warm.lambda.is_finite() || warm.lambda < 0.0 {
        return Err(AlgError::InvalidConfig {
            what: format!(
                "warm-start lambda = {} must be finite and non-negative",
                warm.lambda
            ),
        });
    }
    let reference = centralized::solve(problem);
    let optimal_utility = problem.total_utility(&reference.allocation);
    Ok(solve_from(problem, config, optimal_utility, warm.lambda))
}

/// Runs Algorithm 3 against a precomputed optimal utility — the variant to
/// wall-clock when the oracle's cost must not contaminate the measurement.
pub fn solve_with_reference(
    problem: &PowerBudgetProblem,
    config: &PrimalDualConfig,
    optimal_utility: f64,
) -> PrimalDualResult {
    solve_from(problem, config, optimal_utility, 0.0)
}

/// The shared ascent loop: [`solve_with_reference`] starts the price at 0
/// (the paper's cold start), [`solve_warm`] at the carried dual state.
fn solve_from(
    problem: &PowerBudgetProblem,
    config: &PrimalDualConfig,
    optimal_utility: f64,
    lambda0: f64,
) -> PrimalDualResult {
    let step = config.step.unwrap_or_else(|| default_step(problem));
    let budget = problem.budget();
    let feas_tol = budget * 1e-9 + Watts(1e-9);

    // Per-iteration scratch: the primal responses land in a reusable buffer
    // filled in parallel over chunk-aligned shards; the (power, utility)
    // sums are folded per fixed-size chunk in ascending order so the totals
    // are bitwise identical for every worker count.
    let n = problem.len();
    // One persistent pool serves every iteration of the solve: the per-
    // iteration primal responses dispatch to already-parked workers
    // instead of spawning a fresh thread scope each time.
    let mut engine = Engine::with_backend(Backend::Pooled, config.threads.resolve(n));
    let workers = engine.workers_for(chunk_count(n));
    let cuts = shard_bounds_aligned(n, workers, REDUCE_CHUNK);
    let mut scratch = ResponseScratch {
        powers: vec![0.0; n],
        power_partials: vec![0.0; chunk_count(n)],
        utility_partials: vec![0.0; chunk_count(n)],
    };

    let mut lambda = lambda0;
    let mut history = Vec::new();
    let mut best_feasible: Option<(f64, f64)> = None;
    // Bold-driver adaptation: boxes pin part of the cluster, shrinking the
    // dual sensitivity below the all-interior Newton estimate; growing the
    // step while the residual keeps its sign (and halving on a sign flip)
    // recovers the paper's few-iteration convergence without per-problem
    // tuning.
    let mut step = step;
    let mut prev_residual: Option<f64> = None;

    for iter in 1..=config.max_iterations {
        // Primal response at the current price (Eq. 4.6), computed locally
        // by every server.
        let (total, utility) = primal_response(
            problem,
            lambda,
            config.precision,
            &mut engine,
            &cuts,
            &mut scratch,
        );
        history.push(PrimalDualTrace {
            lambda,
            total_power: total,
            utility,
        });

        let feasible = total <= budget + feas_tol;
        if feasible {
            let gap = (optimal_utility - utility).abs() / optimal_utility.abs().max(1e-12);
            if gap < config.rel_tol {
                return PrimalDualResult {
                    allocation: scratch.allocation(),
                    lambda,
                    iterations: iter,
                    converged: true,
                    history,
                };
            }
            match &best_feasible {
                Some((_, u)) if *u >= utility => {}
                _ => best_feasible = Some((lambda, utility)),
            }
        }

        // Dual ascent at the coordinator (Eq. 4.5).
        let residual = (budget - total).0;
        if let Some(prev) = prev_residual {
            if prev.signum() == residual.signum() {
                step *= 1.6;
            } else {
                step *= 0.5;
            }
        }
        prev_residual = Some(residual);
        lambda = (lambda - step * residual).max(0.0);
    }

    let (lambda, allocation) = match best_feasible {
        Some((l, _)) => {
            // The primal response is a pure function of the price, so the
            // best feasible iterate is recovered by re-evaluating it.
            primal_response(
                problem,
                l,
                config.precision,
                &mut engine,
                &cuts,
                &mut scratch,
            );
            (l, scratch.allocation())
        }
        None => {
            // Never feasible within budget: fall back to the oracle
            // solution (recomputed — this path only fires on pathological
            // configurations, never in the timed hot path).
            let reference = centralized::solve(problem);
            (reference.lambda, reference.allocation)
        }
    };
    PrimalDualResult {
        allocation,
        lambda,
        iterations: config.max_iterations,
        converged: false,
        history,
    }
}

/// Reusable buffers for [`primal_response`].
struct ResponseScratch {
    powers: Vec<f64>,
    power_partials: Vec<f64>,
    utility_partials: Vec<f64>,
}

impl ResponseScratch {
    fn allocation(&self) -> Allocation {
        self.powers.iter().map(|&p| Watts(p)).collect()
    }
}

/// Evaluates every server's closed-form response to `lambda` (Eq. 4.6) into
/// `scratch.powers`, returning the total power and total utility.
///
/// The node loop is sharded over `engine`'s workers along the chunk-aligned
/// `cuts`; each worker writes only its own slice of `powers` and its own
/// per-chunk partial sums, which are then folded in ascending chunk order.
/// Under [`Precision::Reference`] each chunk accumulates in strict program
/// order; under [`Precision::Fast`] each chunk accumulates over 4
/// independent lanes folded in a fixed lane order. Either way the chunk
/// layout — and hence the result — is bitwise identical for any worker
/// count; only the tiers differ from each other, by rounding.
fn primal_response(
    problem: &PowerBudgetProblem,
    lambda: f64,
    precision: Precision,
    engine: &mut Engine,
    cuts: &[usize],
    scratch: &mut ResponseScratch,
) -> (Watts, f64) {
    let workers = cuts.len() - 1;
    {
        let powers = SharedSlice::new(&mut scratch.powers);
        let power_partials = SharedSlice::new(&mut scratch.power_partials);
        let utility_partials = SharedSlice::new(&mut scratch.utility_partials);
        engine.run_workers(workers, |w| {
            let range = cuts[w]..cuts[w + 1];
            let mut start = range.start;
            while start < range.end {
                let end = (start + REDUCE_CHUNK).min(range.end);
                let (power_sum, utility_sum) = match precision {
                    Precision::Reference => response_chunk(problem, lambda, start, end, &powers),
                    Precision::Fast => response_chunk_fast(problem, lambda, start, end, &powers),
                };
                // SAFETY: shards are chunk-aligned, so chunk
                // `start / REDUCE_CHUNK` is owned exclusively by this
                // worker.
                unsafe {
                    power_partials.write(start / REDUCE_CHUNK, power_sum);
                    utility_partials.write(start / REDUCE_CHUNK, utility_sum);
                }
                start = end;
            }
        });
    }
    let total: f64 = scratch.power_partials.iter().sum();
    let utility: f64 = scratch.utility_partials.iter().sum();
    (Watts(total), utility)
}

/// One reduction chunk of the primal response, summed in strict program
/// order (the bitwise reference tier).
fn response_chunk(
    problem: &PowerBudgetProblem,
    lambda: f64,
    start: usize,
    end: usize,
    powers: &SharedSlice<'_, f64>,
) -> (f64, f64) {
    let mut power_sum = 0.0;
    let mut utility_sum = 0.0;
    for i in start..end {
        let u = problem.utility(i);
        let p = u.argmax_minus_price(lambda);
        // SAFETY: shards are disjoint and chunk-aligned, so node `i` is
        // owned exclusively by this worker.
        unsafe { powers.write(i, p.0) };
        power_sum += p.0;
        utility_sum += u.value(p);
    }
    (power_sum, utility_sum)
}

/// One reduction chunk of the primal response, accumulated over 4
/// independent lanes folded pairwise — a fixed reassociation the fast
/// tier is allowed, which breaks the loop-carried dependency chain and
/// lets the adds pipeline/vectorize.
fn response_chunk_fast(
    problem: &PowerBudgetProblem,
    lambda: f64,
    start: usize,
    end: usize,
    powers: &SharedSlice<'_, f64>,
) -> (f64, f64) {
    const LANES: usize = 4;
    let mut pow = [0.0_f64; LANES];
    let mut util = [0.0_f64; LANES];
    let len = end - start;
    let main = len - len % LANES;
    let mut k = 0;
    while k < main {
        for l in 0..LANES {
            let i = start + k + l;
            let u = problem.utility(i);
            let p = u.argmax_minus_price(lambda);
            // SAFETY: shards are disjoint and chunk-aligned, so node `i`
            // is owned exclusively by this worker.
            unsafe { powers.write(i, p.0) };
            pow[l] += p.0;
            util[l] += u.value(p);
        }
        k += LANES;
    }
    for i in start + main..end {
        let u = problem.utility(i);
        let p = u.argmax_minus_price(lambda);
        // SAFETY: as above.
        unsafe { powers.write(i, p.0) };
        pow[0] += p.0;
        util[0] += u.value(p);
    }
    (
        (pow[0] + pow[1]) + (pow[2] + pow[3]),
        (util[0] + util[1]) + (util[2] + util[3]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn converges_in_a_handful_of_iterations() {
        let p = problem(200, 33_000.0, 1);
        let r = solve(&p, &PrimalDualConfig::default());
        assert!(r.converged, "did not converge: {} iterations", r.iterations);
        assert!(r.iterations <= 25, "too slow: {}", r.iterations);
        assert!(p.is_feasible(&r.allocation, Watts(1e-3)));
    }

    #[test]
    fn final_utility_within_one_percent_of_oracle() {
        for &budget in &[8_200.0, 8_600.0, 9_200.0] {
            let p = problem(50, budget, 2);
            let r = solve(&p, &PrimalDualConfig::default());
            let opt = p.total_utility(&centralized::solve(&p).allocation);
            let got = p.total_utility(&r.allocation);
            assert!(got >= opt * 0.99, "budget {budget}: {got} vs {opt}");
        }
    }

    #[test]
    fn lambda_approaches_oracle_price() {
        let p = problem(100, 16_500.0, 3);
        let r = solve(&p, &PrimalDualConfig::default());
        let oracle = centralized::solve(&p);
        let rel = (r.lambda - oracle.lambda).abs() / oracle.lambda.max(1e-12);
        assert!(rel < 0.2, "λ {} vs oracle {}", r.lambda, oracle.lambda);
    }

    #[test]
    fn loose_budget_converges_immediately() {
        let p = problem(20, 1e6, 4);
        let r = solve(&p, &PrimalDualConfig::default());
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        for (u, &pw) in p.utilities().iter().zip(r.allocation.powers()) {
            assert_eq!(pw, u.p_max());
        }
    }

    #[test]
    fn history_records_price_trajectory() {
        let p = problem(50, 8_400.0, 5);
        let r = solve(&p, &PrimalDualConfig::default());
        assert_eq!(r.history.len(), r.iterations);
        assert_eq!(r.history[0].lambda, 0.0);
        // Price rises from zero toward the optimum when the budget binds.
        assert!(r.history.last().unwrap().lambda > 0.0);
    }

    #[test]
    fn worker_count_does_not_change_the_solve() {
        // Large enough to span several reduction chunks, so the parallel
        // path genuinely shards the primal response.
        let p = problem(10_000, 1_650_000.0, 7);
        let base = solve(
            &p,
            &PrimalDualConfig {
                threads: Threads::Fixed(1),
                ..Default::default()
            },
        );
        for threads in [2, 3, 7] {
            let cfg = PrimalDualConfig {
                threads: Threads::Fixed(threads),
                ..Default::default()
            };
            let r = solve(&p, &cfg);
            assert_eq!(r.iterations, base.iterations, "threads {threads}");
            assert_eq!(
                r.lambda.to_bits(),
                base.lambda.to_bits(),
                "threads {threads}"
            );
            for (a, b) in r.allocation.powers().iter().zip(base.allocation.powers()) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn fast_precision_agrees_with_reference_and_stays_thread_invariant() {
        // Spans several reduction chunks so the fast lanes genuinely run.
        let p = problem(10_000, 1_650_000.0, 7);
        let reference = solve(&p, &PrimalDualConfig::default());
        let fast_cfg = PrimalDualConfig {
            precision: Precision::Fast,
            threads: Threads::Fixed(1),
            ..Default::default()
        };
        let fast = solve(&p, &fast_cfg);
        assert!(fast.converged);
        // Numeric equivalence: same λ and allocation to far below a watt.
        assert!(
            (fast.lambda - reference.lambda).abs() / reference.lambda.max(1e-12) < 1e-6,
            "λ {} vs {}",
            fast.lambda,
            reference.lambda
        );
        for (a, b) in fast
            .allocation
            .powers()
            .iter()
            .zip(reference.allocation.powers())
        {
            assert!((a.0 - b.0).abs() < 1e-3, "{a} vs {b}");
        }
        // The fast tier keeps worker-count invariance (fixed chunk
        // reassociation): every thread count reproduces the same bits.
        for threads in [2, 3, 7] {
            let r = solve(
                &p,
                &PrimalDualConfig {
                    threads: Threads::Fixed(threads),
                    ..fast_cfg
                },
            );
            assert_eq!(r.lambda.to_bits(), fast.lambda.to_bits(), "{threads}");
            for (a, b) in r.allocation.powers().iter().zip(fast.allocation.powers()) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn warm_start_beats_cold_on_a_small_budget_trim() {
        let p = problem(200, 33_000.0, 8);
        let cold = solve(&p, &PrimalDualConfig::default());
        assert!(cold.converged);
        // Trim the budget 2 % and re-solve both ways.
        let trimmed = p.with_budget(Watts(33_000.0 * 0.98)).unwrap();
        let recold = solve(&trimmed, &PrimalDualConfig::default());
        let warm = solve_warm(&trimmed, &PrimalDualConfig::default(), &cold.warm_start()).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= recold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            recold.iterations
        );
        assert!(trimmed.is_feasible(&warm.allocation, Watts(1e-3)));
    }

    #[test]
    fn warm_start_rejects_bad_lambda() {
        let p = problem(10, 2_000.0, 9);
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = solve_warm(
                &p,
                &PrimalDualConfig::default(),
                &DualWarmStart { lambda: bad },
            )
            .unwrap_err();
            assert!(matches!(err, AlgError::InvalidConfig { .. }), "{bad}");
        }
    }

    #[test]
    fn tiny_step_hits_iteration_budget_without_panicking() {
        let p = problem(30, 4_900.0, 6);
        let cfg = PrimalDualConfig {
            step: Some(1e-15),
            max_iterations: 10,
            rel_tol: 0.01,
            ..Default::default()
        };
        let r = solve(&p, &cfg);
        assert!(!r.converged);
        assert!(p.is_feasible(&r.allocation, Watts(1e-3)));
    }
}
