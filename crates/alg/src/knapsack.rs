//! Multiple-choice knapsack power budgeting (Chapter 3, Algorithm 2).
//!
//! The centralized predecessor of the decentralized scheme: each server
//! picks one cap from a discrete ladder (p-states only enforce discrete
//! power levels), and the geometric-mean SNP objective
//! `max Π ANPᵢ(pᵢ)` becomes `max Σ ln ANPᵢ(pᵢ)` — a multiple-choice
//! knapsack over budget units solved by dynamic programming in
//! `O(n · r · B)`.

use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::units::Watts;

/// Result of the knapsack solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Chosen cap per server.
    pub allocation: Allocation,
    /// Index into `levels` chosen per server.
    pub chosen_levels: Vec<usize>,
    /// Achieved `Σ ln ANPᵢ` (so `exp(value / n)` is the geometric-mean SNP).
    pub log_value: f64,
}

/// Solves the discrete budgeting problem over a shared cap ladder.
///
/// `levels` are the enforceable caps, ascending (e.g. the server's p-state
/// power levels, or the paper's 130 W…165 W in 5 W steps); `unit` is the DP
/// granularity — weights are rounded *up* to `unit` multiples, so the
/// returned allocation never exceeds the budget.
///
/// # Errors
///
/// * [`AlgError::DimensionMismatch`] when `levels` is empty,
/// * [`AlgError::InfeasibleBudget`] when even the lowest cap everywhere
///   exceeds the budget.
///
/// # Panics
///
/// Panics if `levels` is not strictly ascending, a level falls outside some
/// server's power box, or `unit` is not positive.
pub fn solve(
    problem: &PowerBudgetProblem,
    levels: &[Watts],
    unit: Watts,
) -> Result<KnapsackSolution, AlgError> {
    if !levels.is_empty() {
        for u in problem.utilities() {
            assert!(
                levels[0] >= u.p_min() && *levels.last().unwrap() <= u.p_max(),
                "cap ladder must lie inside every server's power box"
            );
        }
    }
    let values: Vec<Vec<f64>> = problem
        .utilities()
        .iter()
        .map(|u| levels.iter().map(|&l| u.anp(l)).collect())
        .collect();
    solve_with_values(&values, levels, problem.budget(), unit)
}

/// Solves the discrete budgeting problem from externally supplied per-server
/// ANP values (`values[i][j]` = predicted ANP of server `i` at `levels[j]`)
/// — the entry point for *predictor-driven* budgeting, where the values come
/// from a runtime throughput predictor rather than the true curves.
///
/// # Errors
///
/// See [`solve`].
///
/// # Panics
///
/// See [`solve`]; additionally panics if any value row length differs from
/// `levels`.
pub fn solve_with_values(
    values: &[Vec<f64>],
    levels: &[Watts],
    budget: Watts,
    unit: Watts,
) -> Result<KnapsackSolution, AlgError> {
    if levels.is_empty() {
        return Err(AlgError::DimensionMismatch {
            expected: 1,
            got: 0,
        });
    }
    assert!(unit > Watts::ZERO, "DP unit must be positive");
    assert!(
        levels.windows(2).all(|w| w[0] < w[1]),
        "cap levels must be strictly ascending"
    );
    assert!(
        levels.len() <= u8::MAX as usize,
        "at most {} cap levels supported",
        u8::MAX
    );
    let n = values.len();
    if n == 0 {
        return Err(AlgError::EmptyProblem);
    }
    for row in values {
        assert_eq!(row.len(), levels.len(), "value row width must match levels");
    }
    let base = levels[0];
    let floor_total = base * n as f64;
    if floor_total > budget {
        return Err(AlgError::InfeasibleBudget {
            budget,
            min_required: floor_total,
        });
    }

    // Budget slack in DP units; weights rounded up keep the result
    // feasible. Slack beyond every server taking the top cap is useless,
    // so it is clamped — this bounds the DP table for loose budgets.
    let weights: Vec<usize> = levels
        .iter()
        .map(|&l| ((l - base) / unit).ceil() as usize)
        .collect();
    let max_useful = n * weights.last().copied().unwrap_or(0);
    let slack = (((budget - floor_total) / unit).floor() as usize).min(max_useful);

    // V[k] = best Σ ln ANP using at most k slack units over the servers
    // processed so far; monotone nondecreasing in k throughout.
    let mut value = vec![0.0_f64; slack + 1];
    let mut next = vec![0.0_f64; slack + 1];
    // choice[i * (slack+1) + k]: the level server i picks when k units
    // remain, for backtracking.
    let mut choice = vec![0u8; n * (slack + 1)];

    for (i, anps) in values.iter().enumerate() {
        let log_anps: Vec<f64> = anps.iter().map(|&a| a.max(1e-300).ln()).collect();
        for k in 0..=slack {
            let mut best = f64::NEG_INFINITY;
            let mut best_j = 0u8;
            for (j, (&w, &v)) in weights.iter().zip(&log_anps).enumerate() {
                if w > k {
                    break; // weights ascend with levels
                }
                let cand = value[k - w] + v;
                if cand > best {
                    best = cand;
                    best_j = j as u8;
                }
            }
            next[k] = best;
            choice[i * (slack + 1) + k] = best_j;
        }
        std::mem::swap(&mut value, &mut next);
    }

    // Backtrack from full slack.
    let mut k = slack;
    let mut chosen_levels = vec![0usize; n];
    for i in (0..n).rev() {
        let j = choice[i * (slack + 1) + k] as usize;
        chosen_levels[i] = j;
        k -= weights[j];
    }
    let allocation: Allocation = chosen_levels.iter().map(|&j| levels[j]).collect();
    Ok(KnapsackSolution {
        allocation,
        chosen_levels,
        log_value: value[slack],
    })
}

/// The paper's Chapter 3 cap ladder: 130 W to 165 W in 5 W steps (r = 8).
pub fn chapter3_levels() -> Vec<Watts> {
    (0..8).map(|j| Watts(130.0 + 5.0 * j as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::metrics::snp_geometric;
    use dpc_models::workload::ClusterBuilder;

    /// Cap levels inside the default server box [~154.5, 200].
    fn levels() -> Vec<Watts> {
        (0..8).map(|j| Watts(160.0 + 5.0 * j as f64)).collect()
    }

    fn problem(n: usize, budget: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn respects_budget_and_ladder() {
        let p = problem(20, 3_400.0, 1);
        let s = solve(&p, &levels(), Watts(5.0)).unwrap();
        assert!(s.allocation.total() <= p.budget());
        for (&pw, &j) in s.allocation.powers().iter().zip(&s.chosen_levels) {
            assert_eq!(pw, levels()[j]);
        }
    }

    #[test]
    fn loose_budget_gives_everyone_top_cap() {
        let p = problem(10, 10_000.0, 2);
        let s = solve(&p, &levels(), Watts(5.0)).unwrap();
        for &j in &s.chosen_levels {
            assert_eq!(j, levels().len() - 1);
        }
        // The ladder top (195 W) sits below p_max (200 W), so ANP < 1; the
        // DP value must equal the sum of the top-cap log-ANPs exactly.
        let expected: f64 = p
            .utilities()
            .iter()
            .map(|u| u.anp(*levels().last().unwrap()).ln())
            .sum();
        assert!((s.log_value - expected).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_pins_everyone_to_bottom_cap() {
        let lv = levels();
        let p = problem(10, 1_604.0, 3); // 10·160 = 1600, slack < one 5 W step
        let s = solve(&p, &lv, Watts(5.0)).unwrap();
        assert!(s.chosen_levels.iter().all(|&j| j == 0));
    }

    #[test]
    fn beats_every_uniform_ladder_assignment() {
        let lv = levels();
        let p = problem(30, 5_100.0, 4); // 170 W average: uniform fits level 2
        let s = solve(&p, &lv, Watts(5.0)).unwrap();
        let snp_dp = snp_geometric(&p.anps(&s.allocation));
        // Uniform at 170 W (the best whole-ladder uniform under budget).
        let uniform: Allocation = (0..30).map(|_| Watts(170.0)).collect();
        let snp_uni = snp_geometric(&p.anps(&uniform));
        assert!(
            snp_dp >= snp_uni - 1e-12,
            "DP {snp_dp} vs uniform {snp_uni}"
        );
    }

    #[test]
    fn matches_exhaustive_search_on_small_instance() {
        let lv: Vec<Watts> = (0..4).map(|j| Watts(160.0 + 10.0 * j as f64)).collect();
        let p = problem(4, 700.0, 5);
        let s = solve(&p, &lv, Watts(5.0)).unwrap();
        // Brute force all 4^4 assignments.
        let mut best = f64::NEG_INFINITY;
        for mask in 0..(4usize.pow(4)) {
            let mut m = mask;
            let mut total = Watts::ZERO;
            let mut val = 0.0;
            for i in 0..4 {
                let j = m % 4;
                m /= 4;
                total += lv[j];
                val += p.utility(i).anp(lv[j]).ln();
            }
            if total <= p.budget() {
                best = best.max(val);
            }
        }
        assert!(
            (s.log_value - best).abs() < 1e-9,
            "DP {} vs brute force {best}",
            s.log_value
        );
    }

    #[test]
    fn infeasible_floor_is_reported() {
        let p = problem(10, 1_550.0, 6);
        let err = solve(&p, &levels(), Watts(5.0)).unwrap_err();
        assert!(matches!(err, AlgError::InfeasibleBudget { .. }));
    }

    #[test]
    fn empty_ladder_is_rejected() {
        let p = problem(2, 400.0, 7);
        assert!(matches!(
            solve(&p, &[], Watts(5.0)),
            Err(AlgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn chapter3_ladder_matches_the_text() {
        let lv = chapter3_levels();
        assert_eq!(lv.len(), 8);
        assert_eq!(lv[0], Watts(130.0));
        assert_eq!(*lv.last().unwrap(), Watts(165.0));
    }
}
