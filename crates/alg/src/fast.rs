//! The `Precision::Fast` kernel tier — SoA layout, 4-wide lanes, a
//! one-division gradient, and delta materialization over the ring.
//!
//! The reference round kernel ([`crate::diba`]) executes scalar f64 in
//! strict program order because its contract is *bitwise* determinism:
//! even a precomputed reciprocal rounds differently and is therefore
//! forbidden. That contract leaves most of a modern core's FLOP
//! throughput on the table. This module is the other half of the split
//! contract ([`crate::exec::Precision`]): the same per-node math,
//! restructured for throughput, gated by **numeric equivalence** (final
//! allocation within ε of the reference, convergence round within ±k)
//! instead of byte equality.
//!
//! What the fast tier is allowed to do that the reference is not:
//!
//! * **SoA curve layout.** [`FastState`] flattens the per-node quadratic
//!   utilities into parallel `Vec<f64>` arrays (`b`, `2c`, `p_min`,
//!   `p_max`) plus a per-node transfer scale, padded to the vector
//!   width, so the gradient pass streams coefficients instead of
//!   chasing `QuadraticUtility` structs.
//! * **One division per node.** The reference computes `inv = 1/ê` and
//!   then `grad/precond` — two serial `divsd` per node plus one per
//!   directed edge, which dominate its phase-A cost. The fast gradient
//!   multiplies the quotient through by `ê²` (see `gradient_step`) so
//!   each node costs exactly one division, and the per-edge division is
//!   hoisted into the per-node scale `tscale = step_transfer·0.5/degree`.
//! * **4-wide unrolled lanes.** Every dense pass processes [`LANES`]
//!   nodes per iteration through fixed-size lane arrays — straight-line
//!   FP with no cross-lane dependencies, which stable rustc
//!   auto-vectorizes to packed SIMD (no `std::simd` nightly dependency)
//!   — with a scalar tail for the remainder.
//! * **Delta materialization.** The reference materializes every
//!   directed transfer in a CSR-aligned buffer and folds it back through
//!   a reverse-slot map. The fast tier never stores ring transfers at
//!   all: a transfer is a pure function of barrier-sealed state, so one
//!   fused sweep over *shifted contiguous* reads of `e` recomputes all
//!   four sends around each node — its own two donations plus the two
//!   aimed at it — applies the feasibility backtracking, and writes the
//!   already-accumulated residual delta `d[i]` directly. Phase B then
//!   degenerates to `p[i] += p̂ᵢ; e[i] += p̂ᵢ + dᵢ`, a pure stream. Both
//!   endpoints of an edge evaluate the *same* expression on the *same*
//!   sealed inputs, so the send is added and subtracted with identical
//!   bits and `Σe = Σp − P` is conserved to rounding.
//! * **Speculate, then patch the exceptions.** The sweep assumes every
//!   neighborhood is exactly the two ring edges and nobody scales their
//!   donations down. Where that fails the result is repaired after the
//!   sweep from the same sealed state: nodes with chords or missing
//!   ring edges are re-done scalar (`exceptional`), nodes whose
//!   backtracking scaled their sends are recorded as *events*, and
//!   every node ring-adjacent to an event or a structural defect gets
//!   its `d` rebuilt exactly. A neighbor across a shard cut is the one
//!   event source another worker cannot see, so its scaled status is
//!   re-derived from sealed state — two extra O(degree) probes per
//!   shard per round. Chord transfers go through a tiny extras-only
//!   buffer (`O(chords)`, not `O(edges)`): the sender's patch already
//!   computes every chord donation for its `sent` total, so it stores
//!   the final (scaled) value once and the receiver folds it in phase B
//!   — recomputing it at the receiver would cost a random-access
//!   gradient re-derivation per chord endpoint.
//! * **Shard-local reassociation.** Reductions that feed only the fast
//!   trajectory (a node's `sent` total, its extras fold) may use a
//!   different but *fixed* association than the reference's CSR-row
//!   order.
//!
//! What it must still honor: the *structure* of Algorithm 4 — box
//! projection, the hard slack margin (`e ≤ −margin` after own actions),
//! donation financing by power shedding — is identical, so the fast
//! trajectory contracts to the same equilibrium and conserves
//! `Σe = Σp − P` to rounding. Like the reference tier, the fast kernel
//! reads only state sealed by the previous barrier, each node's result
//! depends on nothing another worker computes this round, and every
//! per-node expression is identical between the unrolled lanes, the
//! scalar tail, and every patch/correction path (no FMA contraction, no
//! lane-position dependence), so the fast trajectory is also bitwise
//! identical across worker counts and batch sizes — `Reference` vs
//! `Fast` is the only seam where bits may (and do) differ.

use crate::exec::SharedSlice;
use dpc_models::QuadraticUtility;
use dpc_topology::Graph;
use std::ops::Range;

/// Nodes processed per unrolled iteration of the dense passes: f64x4,
/// one AVX2 register (and two NEON/SSE2 registers — the unrolled form
/// vectorizes on every stable target).
pub const LANES: usize = 4;

/// Per-node parameters the fast kernel reads each round; mirrors the
/// fields of `diba::NodeParams` that survive reciprocal hoisting
/// (`step_transfer` is baked into [`FastState`]'s per-node scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastRoundParams {
    /// Barrier weight η in effect this round (continuation-boosted).
    pub eta: f64,
    /// Hard slack margin (watts).
    pub margin: f64,
    /// Power gradient step.
    pub step_power: f64,
}

/// A node the fused ring sweep cannot finish: its neighborhood is not
/// exactly the two ring edges (a ring edge is missing, or chords add
/// extra terms to its `sent` total). The sweep's speculative result for
/// it is overwritten by a scalar re-computation.
#[derive(Debug, Clone, Copy)]
struct ExceptionalNode {
    node: usize,
    has_prev: bool,
    has_next: bool,
}

/// Structure-of-arrays mirror of the problem's curve coefficients plus
/// the topology's ring/extras decomposition — the working set of the
/// fast kernel, laid out for streaming access and padded to [`LANES`].
///
/// Built once per run (only when `Precision::Fast` is selected) and
/// updated in place on workload changes, so steady-state rounds touch
/// only flat `f64` arrays.
#[derive(Debug, Clone)]
pub struct FastState {
    /// Linear coefficient `b` per node.
    b: Vec<f64>,
    /// `2c` per node (the slope's curvature term; the preconditioner
    /// takes `|2c|` in-register — no separate array).
    two_c: Vec<f64>,
    /// Lower power box bound per node.
    p_min: Vec<f64>,
    /// Upper power box bound per node.
    p_max: Vec<f64>,
    /// Hoisted per-node transfer scale `step_transfer · 0.5 / degree`
    /// (the reference divides by `degree` per directed edge instead).
    tscale: Vec<f64>,
    /// Real (unpadded) node count; the SoA arrays above are padded to
    /// the next multiple of [`LANES`].
    n: usize,
    /// Nodes the fused sweep must not finalize, ascending by index. Empty
    /// for a pure ring; `2 · chords` entries for a chorded ring; all `n`
    /// nodes in the worst (fully non-ring) case.
    exceptional: Vec<ExceptionalNode>,
    /// Subset of `exceptional` that is missing a ring edge, ascending —
    /// the static triggers of the delta correction (a chord-only node's
    /// ring sends are exactly what the sweep speculated, so it is not a
    /// trigger unless backtracking scales it).
    defects: Vec<usize>,
    /// CSR offsets (length `n + 1`) into `extra_dst` of each node's
    /// non-ring (chord) edges.
    extra_offsets: Vec<usize>,
    /// Destination node of each extra edge, grouped by source node.
    extra_dst: Vec<usize>,
    /// CSR offsets (length `n + 1`) into `extra_in_slot` of each node's
    /// *incoming* extra edges.
    extra_in_offsets: Vec<usize>,
    /// For each incoming extra edge of a node: the index into the extras
    /// buffer where the sender wrote it, in ascending sender order.
    extra_in_slot: Vec<usize>,
    /// Nodes with any incoming or outgoing extra edge, ascending — the
    /// only nodes the extras fold must visit (so it never scans the full
    /// offset arrays on a nearly-ring topology).
    extra_nodes: Vec<usize>,
}

impl FastState {
    /// Builds the SoA mirror for `utilities` on `graph`: per-node curves
    /// with `step_transfer` hoisted into the transfer scale, and the
    /// graph's edges decomposed into the ring part (`i ± 1 mod n`,
    /// vectorizable with shifted loads) and the extras list (everything
    /// else — chords, or all edges of a non-ring graph).
    pub fn new(utilities: &[QuadraticUtility], graph: &Graph, step_transfer: f64) -> FastState {
        let n = utilities.len();
        let np = n.div_ceil(LANES).max(1) * LANES;
        let offsets = graph.offsets();
        let flat = graph.flat_neighbors();

        let mut exceptional = Vec::new();
        let mut extra_offsets = Vec::with_capacity(n + 1);
        extra_offsets.push(0);
        let mut extra_dst = Vec::new();
        for i in 0..n {
            let prev = if i == 0 { n - 1 } else { i - 1 };
            let next = if i + 1 == n { 0 } else { i + 1 };
            let (mut has_prev, mut has_next) = (false, false);
            for &j in &flat[offsets[i]..offsets[i + 1]] {
                if !has_prev && j == prev {
                    has_prev = true;
                } else if !has_next && j == next {
                    has_next = true;
                } else {
                    extra_dst.push(j);
                }
            }
            let extras = extra_dst.len() > extra_offsets[i];
            extra_offsets.push(extra_dst.len());
            if !(has_prev && has_next) || extras {
                exceptional.push(ExceptionalNode {
                    node: i,
                    has_prev,
                    has_next,
                });
            }
        }
        let defects: Vec<usize> = exceptional
            .iter()
            .filter(|x| !(x.has_prev && x.has_next))
            .map(|x| x.node)
            .collect();

        // Invert the extras: for each node, where in the extras buffer
        // did each sender write the transfer aimed at it. Filled in
        // ascending sender order, so the incoming fold is deterministic.
        let mut extra_in_offsets = vec![0usize; n + 1];
        for &j in &extra_dst {
            extra_in_offsets[j + 1] += 1;
        }
        for i in 0..n {
            extra_in_offsets[i + 1] += extra_in_offsets[i];
        }
        let mut fill = extra_in_offsets.clone();
        let mut extra_in_slot = vec![0usize; extra_dst.len()];
        for (x, &j) in extra_dst.iter().enumerate() {
            extra_in_slot[fill[j]] = x;
            fill[j] += 1;
        }
        let extra_nodes: Vec<usize> = (0..n)
            .filter(|&i| {
                extra_offsets[i + 1] > extra_offsets[i]
                    || extra_in_offsets[i + 1] > extra_in_offsets[i]
            })
            .collect();

        let mut st = FastState {
            b: vec![0.0; np],
            two_c: vec![0.0; np],
            p_min: vec![0.0; np],
            p_max: vec![0.0; np],
            tscale: vec![0.0; np],
            n,
            exceptional,
            defects,
            extra_offsets,
            extra_dst,
            extra_in_offsets,
            extra_in_slot,
            extra_nodes,
        };
        for (i, u) in utilities.iter().enumerate() {
            st.set_node(i, u);
            let degree = (offsets[i + 1] - offsets[i]).max(1);
            st.tscale[i] = step_transfer * 0.5 / degree as f64;
        }
        st
    }

    /// Unpadded node count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the state covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Re-mirrors node `i`'s curve after a workload change (the transfer
    /// scale is topology-only and unaffected).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace_utility(&mut self, i: usize, u: &QuadraticUtility) {
        assert!(i < self.n, "node {i} out of range ({} nodes)", self.n);
        self.set_node(i, u);
    }

    fn set_node(&mut self, i: usize, u: &QuadraticUtility) {
        let (_, b, c) = u.coefficients();
        self.b[i] = b;
        self.two_c[i] = 2.0 * c;
        self.p_min[i] = u.p_min().0;
        self.p_max[i] = u.p_max().0;
    }

    /// Length of the per-round extras buffer (one slot per directed
    /// chord edge — zero on a pure ring).
    pub(crate) fn extras_len(&self) -> usize {
        self.extra_dst.len()
    }
}

/// Phase A of a fast round over one shard: the vectorizable
/// gradient/projection pass, then one fused sweep that derives the ring
/// sends around each node from shifted contiguous reads of `e` (each
/// send computed once and reused for the neighbor's side), applies the
/// feasibility backtracking, and materializes the accumulated residual
/// delta `d[i]` directly — no ring-transfer buffer. The two passes stay
/// separate on purpose: fusing them spills the gradient's packed
/// division and measures slower at every size.
/// Exceptional nodes (missing ring edges, chords) are re-done scalar —
/// writing their final chord donations into the shard's slice of the
/// extras buffer — and nodes adjacent to a backtrack-scaled node or a
/// structural defect get their delta rebuilt exactly.
///
/// Writes `p_hat[i]` and `deltas[i]` for every `i` in `range`, fills the
/// shard's extras slots, and returns how many of the shard's nodes
/// scaled their donations down this round (zero on the hot path; the
/// count feeds tests). The shard's max-`|dp|` reduction is folded by
/// [`phase_b_fast`], which streams `p_hat` anyway.
///
/// The memory contract is the reference kernel's: called between round
/// barriers, `p`/`e` are read-only (last round's writes sealed), and
/// this worker exclusively owns `p_hat[range]`, `deltas[range]`, and the
/// extras slots of its own nodes (CSR rows are grouped by sender, so
/// shard ranges slice the extras buffer disjointly).
#[allow(clippy::too_many_arguments)] // one slot per shared round buffer
pub(crate) fn phase_a_fast(
    st: &FastState,
    rp: &FastRoundParams,
    p: &SharedSlice<'_, f64>,
    e: &SharedSlice<'_, f64>,
    range: Range<usize>,
    p_hat: &SharedSlice<'_, f64>,
    deltas: &SharedSlice<'_, f64>,
    extras: &SharedSlice<'_, f64>,
) -> usize {
    let n = st.n;
    debug_assert!(range.end <= n);
    // SAFETY: phase A reads `p`/`e` only — every write to them happened
    // before the previous round-end barrier — and `p_hat[range]` /
    // `deltas[range]` / the shard's extras slots belong to this worker
    // alone (shards are contiguous disjoint node ranges).
    let (p_all, e_all) = unsafe { (p.slice(0..n), e.slice(0..n)) };
    let out = unsafe { p_hat.slice_mut(range.clone()) };
    let d_row = unsafe { deltas.slice_mut(range.clone()) };
    let tx_base = st.extra_offsets[range.start];
    let tx = unsafe { extras.slice_mut(tx_base..st.extra_offsets[range.end]) };

    gradient_projection_pass(st, rp, p_all, e_all, range.clone(), out);
    let mut events = backtrack_delta_sweep(st, rp, p_all, e_all, range.clone(), out, d_row);
    patch_exceptional_pass(
        st,
        rp,
        p_all,
        e_all,
        range.clone(),
        out,
        tx,
        tx_base,
        &mut events,
    );
    // The sweep emits its wraparound boundaries first and the patch
    // appends after the sweep, so restore ascending order for the
    // windowed correction. Empty or single-event rounds (the common
    // case) make this free.
    events.sort_unstable();
    correct_affected_deltas(st, rp, p_all, e_all, range, d_row, &events);
    events.len()
}

/// Phase B of a fast round over one shard: `p[i] += p̂ᵢ`,
/// `e[i] += p̂ᵢ + dᵢ` — a pure stream, because phase A already folded
/// every ring transfer into `deltas` — followed by the chord-transfer
/// adjustment for the shard nodes that have extras (reading the
/// barrier-sealed extras buffer, so sender and receiver fold the exact
/// same bits). Returns the shard's max `|p̂|` (folded with `f64::max`,
/// exactly associative), which phase A deferred to this pass because it
/// streams `p_hat` anyway.
#[allow(clippy::needless_range_loop)] // explicit lane indices keep the unroll
pub(crate) fn phase_b_fast(
    st: &FastState,
    range: Range<usize>,
    p: &SharedSlice<'_, f64>,
    e: &SharedSlice<'_, f64>,
    p_hat: &SharedSlice<'_, f64>,
    deltas: &SharedSlice<'_, f64>,
    extras: &SharedSlice<'_, f64>,
) -> f64 {
    // SAFETY: all `p_hat`/`deltas`/extras writes were sealed by the
    // phase-A/phase-B barrier; this worker owns `p[range]`/`e[range]`.
    let hat = unsafe { p_hat.slice(range.clone()) };
    let d_row = unsafe { deltas.slice(range.clone()) };
    let p_row = unsafe { p.slice_mut(range.clone()) };
    let e_row = unsafe { e.slice_mut(range.clone()) };
    let len = hat.len();
    let main = len - len % LANES;
    let mut local_max = 0.0_f64;

    let mut k = 0;
    while k < main {
        let mut m4 = [0.0_f64; LANES];
        for l in 0..LANES {
            // SAFETY: `k + l < main ≤ len` and all four rows share it.
            unsafe {
                let dp = *hat.get_unchecked(k + l);
                *p_row.get_unchecked_mut(k + l) += dp;
                *e_row.get_unchecked_mut(k + l) += dp + *d_row.get_unchecked(k + l);
                m4[l] = dp.abs();
            }
        }
        // max is order-free, so the lane tree costs nothing in
        // determinism.
        local_max = local_max.max(m4[0].max(m4[1]).max(m4[2].max(m4[3])));
        k += LANES;
    }
    for k in main..len {
        let dp = hat[k];
        p_row[k] += dp;
        e_row[k] += dp + d_row[k];
        local_max = local_max.max(dp.abs());
    }

    // Chord adjustment: incoming extras minus outgoing extras, windowed
    // over the shard's chord endpoints (free on a pure ring). The slot
    // lists are fixed ascending orders, so the fold is deterministic and
    // cut-invariant.
    if !st.extra_dst.is_empty() {
        // SAFETY: every extras slot was written by its sender's phase A
        // and sealed by the barrier; phase B only reads them.
        let tx_all = unsafe { extras.slice(0..st.extra_dst.len()) };
        let a = st.extra_nodes.partition_point(|&i| i < range.start);
        let b = st.extra_nodes.partition_point(|&i| i < range.end);
        for &i in &st.extra_nodes[a..b] {
            let mut adj = 0.0_f64;
            for s in st.extra_in_offsets[i]..st.extra_in_offsets[i + 1] {
                adj += tx_all[st.extra_in_slot[s]];
            }
            for v in &tx_all[st.extra_offsets[i]..st.extra_offsets[i + 1]] {
                adj -= v;
            }
            e_row[i - range.start] += adj;
        }
    }
    local_max
}

/// One node's gradient step, shared verbatim by the unrolled lanes, the
/// scalar tail, and every patch/correction path (which re-derive the raw
/// move from sealed state) so shard cuts can never change a node's bits.
///
/// The reference computes `inv = 1/ê` and then `grad/precond` — two
/// serial divisions per node. Here the quotient is reassociated by
/// multiplying numerator and denominator by `ê²` (positive, so the real
/// value is unchanged):
///
/// ```text
/// dp = step·(b + 2c·p + η/ê) / (|2c| + η/ê²)
///    = step·((b + 2c·p)·ê² + η·ê) / (|2c|·ê² + η)
/// ```
///
/// one division per node, lane-independent, so LLVM emits packed divides
/// for the unrolled block. The reference's `max(precond, 1e-12)` guard
/// survives as `max(den, 1e-12·ê²)` — the same bound scaled by the same
/// factor. The projection uses `max/min` rather than `f64::clamp`:
/// identical results on these NaN-free, ordered bounds, but without
/// clamp's `min ≤ max` assertion branch, which defeats vectorization.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // pure scalars, shared by every path
fn gradient_step(
    pi: f64,
    ei: f64,
    b: f64,
    two_c: f64,
    lo: f64,
    hi: f64,
    eta: f64,
    neg_margin: f64,
    step: f64,
) -> f64 {
    let eh = ei.min(neg_margin);
    let eh2 = eh * eh;
    let num = step * ((b + two_c * pi) * eh2 + eta * eh);
    let den = (two_c.abs() * eh2 + eta).max(1e-12 * eh2);
    (pi + num / den).max(lo).min(hi) - pi
}

/// Pass 1: `dp = project(p + step·grad/precond) − p` for every node in
/// the shard, [`LANES`] nodes per iteration through fixed lane arrays,
/// scalar tail for the remainder. Writes the raw (pre-backtracking) `dp`
/// into `out`, which is `p_hat[range]`.
#[allow(clippy::needless_range_loop)] // explicit lane indices keep the unroll
fn gradient_projection_pass(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    range: Range<usize>,
    out: &mut [f64],
) {
    let eta = rp.eta;
    let neg_margin = -rp.margin;
    let step = rp.step_power;
    let len = range.len();
    let base = range.start;
    let main = len - len % LANES;

    let mut k = 0;
    while k < main {
        let i = base + k;
        let mut dp4 = [0.0_f64; LANES];
        for l in 0..LANES {
            // SAFETY: `i + l < range.end ≤ n` and the SoA arrays are at
            // least `n` long (padded above it).
            let (pi, ei, b, two_c, lo, hi) = unsafe {
                (
                    *p_all.get_unchecked(i + l),
                    *e_all.get_unchecked(i + l),
                    *st.b.get_unchecked(i + l),
                    *st.two_c.get_unchecked(i + l),
                    *st.p_min.get_unchecked(i + l),
                    *st.p_max.get_unchecked(i + l),
                )
            };
            dp4[l] = gradient_step(pi, ei, b, two_c, lo, hi, eta, neg_margin, step);
        }
        out[k..k + LANES].copy_from_slice(&dp4);
        k += LANES;
    }
    for (k, o) in out.iter_mut().enumerate().skip(main) {
        let i = base + k;
        *o = gradient_step(
            p_all[i],
            e_all[i],
            st.b[i],
            st.two_c[i],
            st.p_min[i],
            st.p_max[i],
            eta,
            neg_margin,
            step,
        );
    }
}

/// One node's donation toward one neighbor, shared by every caller
/// (fused lanes, boundary scalars, every patch/correction path) so shard
/// cuts and lane alignment can never change a node's bits. Both
/// endpoints of an edge evaluate this on the same sealed inputs, which
/// is what makes delta materialization conserve `Σe` exactly.
#[inline(always)]
fn ring_send(f: f64, e_i: f64, e_neighbor: f64) -> f64 {
    (f * (e_i - e_neighbor)).min(0.0)
}

/// The feasibility check of Algorithm 4, applied to one node's raw move
/// `dp` and its `sent` donation total (structurally identical to the
/// reference kernel): the own action must keep `e ≤ −margin`; shortfalls
/// are financed by shedding power as far as the box allows, then by
/// scaling the donations down. Updates `dp` in place and returns the
/// factor to apply to the node's transfers (`1.0` in the common,
/// feasible case — the caller skips the multiply, and `p` is only
/// loaded on the slow path so the sweep does not stream it).
#[inline(always)]
fn apply_backtrack(
    st: &FastState,
    p_all: &[f64],
    i: usize,
    e_i: f64,
    sent: f64,
    dp: &mut f64,
    neg_margin: f64,
) -> f64 {
    let bound = neg_margin - e_i;
    if *dp - sent <= bound {
        return 1.0;
    }
    let p_i = p_all[i];
    let dp_needed = bound + sent;
    let dp_shed = (p_i + (*dp).min(dp_needed)).clamp(st.p_min[i], st.p_max[i]) - p_i;
    let mut scale = 1.0;
    if dp_shed - sent > bound {
        let allowed = dp_shed - bound;
        scale = if allowed < 0.0 && sent < 0.0 {
            (allowed / sent).clamp(0.0, 1.0)
        } else {
            0.0
        };
    }
    *dp = dp_shed;
    scale
}

/// `true` when the fused sweep's speculation does not cover node `i`'s
/// neighborhood (cold-path helper — only consulted when backtracking
/// actually fires).
#[inline]
fn is_exceptional(st: &FastState, i: usize) -> bool {
    st.exceptional.binary_search_by_key(&i, |x| x.node).is_ok()
}

/// Which of node `j`'s two ring edges exist (non-exceptional nodes have
/// both by definition).
#[inline]
fn ring_flags(st: &FastState, j: usize) -> (bool, bool) {
    match st.exceptional.binary_search_by_key(&j, |x| x.node) {
        Ok(k) => (st.exceptional[k].has_prev, st.exceptional[k].has_next),
        Err(_) => (true, true),
    }
}

/// Re-derives node `j`'s final ring donations `(t_prev, t_next)` and its
/// backtracking scale from sealed state alone: edge-gated sends, the
/// full `sent` total (ring plus extras, same association as the patch),
/// the raw gradient move, and [`apply_backtrack`]. Every expression is
/// shared with the passes that first computed the node, so any worker
/// may evaluate this for any node — including across a shard cut — and
/// land on identical bits.
fn ring_sends_scaled(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    j: usize,
) -> (f64, f64, f64) {
    let n = st.n;
    let prev = if j == 0 { n - 1 } else { j - 1 };
    let next = if j + 1 == n { 0 } else { j + 1 };
    let (has_prev, has_next) = ring_flags(st, j);
    let e_j = e_all[j];
    let f = st.tscale[j];
    let vp = if has_prev {
        ring_send(f, e_j, e_all[prev])
    } else {
        0.0
    };
    let vn = if has_next {
        ring_send(f, e_j, e_all[next])
    } else {
        0.0
    };
    let mut sent = vp + vn;
    for x in st.extra_offsets[j]..st.extra_offsets[j + 1] {
        sent += ring_send(f, e_j, e_all[st.extra_dst[x]]);
    }
    let mut dp = gradient_step(
        p_all[j],
        e_j,
        st.b[j],
        st.two_c[j],
        st.p_min[j],
        st.p_max[j],
        rp.eta,
        -rp.margin,
        rp.step_power,
    );
    let scale = apply_backtrack(st, p_all, j, e_j, sent, &mut dp, -rp.margin);
    if scale != 1.0 {
        (vp * scale, vn * scale, scale)
    } else {
        (vp, vn, scale)
    }
}

/// Pass 2: the ring sweep. One traversal of `e` derives, per node, its
/// two ring donations from shifted contiguous reads — no CSR gather, no
/// buffer round-trip — backtracks the node against its (speculative)
/// `sent` total, and stores the accumulated delta
/// `d[i] = (in_prev + in_next) − (out_prev + out_next)` directly.
/// Ring-wraparound nodes `0` and `n − 1` are handled scalar with the
/// same expressions.
///
/// The speculation assumes two ring edges everywhere and no donation
/// scaling; nodes where it fails are repaired afterwards (exceptional
/// patch, delta correction). Returns the nodes whose backtracking
/// scaled their donations — the dynamic triggers of that correction —
/// excluding exceptional nodes, whose true scale the patch decides.
fn backtrack_delta_sweep(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    range: Range<usize>,
    out: &mut [f64],
    d_row: &mut [f64],
) -> Vec<usize> {
    let n = st.n;
    let start = range.start;
    let mut events: Vec<usize> = Vec::new();
    if range.is_empty() {
        return events;
    }
    let neg_margin = -rp.margin;

    let mut scalar_node = |i: usize, events: &mut Vec<usize>| {
        let prev = if i == 0 { n - 1 } else { i - 1 };
        let next = if i + 1 == n { 0 } else { i + 1 };
        let e_i = e_all[i];
        let f = st.tscale[i];
        let vp = ring_send(f, e_i, e_all[prev]);
        let vn = ring_send(f, e_i, e_all[next]);
        let vip = ring_send(st.tscale[prev], e_all[prev], e_i);
        let vin = ring_send(st.tscale[next], e_all[next], e_i);
        let k = i - start;
        let mut dp = out[k];
        let scale = apply_backtrack(st, p_all, i, e_i, vp + vn, &mut dp, neg_margin);
        out[k] = dp;
        if scale != 1.0 && !is_exceptional(st, i) {
            events.push(i);
        }
        d_row[k] = (vip + vin) - (vp + vn);
    };
    if start == 0 {
        scalar_node(0, &mut events);
    }
    if n > 1 && range.contains(&(n - 1)) {
        scalar_node(n - 1, &mut events);
    }

    let lo = start.max(1);
    let hi = range.end.min(n - 1);
    if lo >= hi {
        return events;
    }
    let len = hi - lo;
    let main = len - len % LANES;
    // The incoming sends are the neighbors' outgoing ones: node `i`'s
    // `vip` is exactly node `i − 1`'s `vn`, and its `vin` is node
    // `i + 1`'s `vp` — the same expression on the same sealed inputs, so
    // reusing the value instead of recomputing it keeps identical bits
    // while halving the sweep's send count. `prev_vn` carries the last
    // lane's `vn` across blocks; each block looks one node ahead for its
    // last lane's `vin`.
    let mut prev_vn = ring_send(st.tscale[lo - 1], e_all[lo - 1], e_all[lo]);
    let mut k = 0;
    while k < main {
        let i = lo + k;
        let kb = i - start;
        let mut vp4 = [0.0_f64; LANES];
        let mut vn4 = [0.0_f64; LANES];
        let mut viol4 = [0.0_f64; LANES];
        for l in 0..LANES {
            // SAFETY: `1 ≤ i + l < n − 1`, so `i + l ± 1` is in `0..n`,
            // and `kb + l < out.len()` because `i + l < range.end`.
            unsafe {
                let e_m = *e_all.get_unchecked(i + l - 1);
                let e_i = *e_all.get_unchecked(i + l);
                let e_p = *e_all.get_unchecked(i + l + 1);
                let f = *st.tscale.get_unchecked(i + l);
                vp4[l] = ring_send(f, e_i, e_m);
                vn4[l] = ring_send(f, e_i, e_p);
                // The backtracking trigger `dp − sent > −margin − e`, as
                // straight-line FP so the block stays vectorized; one
                // predictable branch per block decides the slow path.
                viol4[l] = *out.get_unchecked(kb + l) - (vp4[l] + vn4[l]) - (neg_margin - e_i);
            }
        }
        // Lookahead: node `i + LANES`'s donation toward `i + LANES − 1`
        // (`i + LANES ≤ hi ≤ n − 1`, and at `hi` this matches the
        // boundary scalar's `vp` bitwise).
        let vp_next = ring_send(st.tscale[i + LANES], e_all[i + LANES], e_all[i + LANES - 1]);
        let d4 = [
            (prev_vn + vp4[1]) - (vp4[0] + vn4[0]),
            (vn4[0] + vp4[2]) - (vp4[1] + vn4[1]),
            (vn4[1] + vp4[3]) - (vp4[2] + vn4[2]),
            (vn4[2] + vp_next) - (vp4[3] + vn4[3]),
        ];
        prev_vn = vn4[LANES - 1];
        if viol4[0].max(viol4[1]).max(viol4[2].max(viol4[3])) > 0.0 {
            // Rare: at least one lane must backtrack; feasible lanes
            // early-return with `dp` (and therefore `out`) unchanged.
            for l in 0..LANES {
                let mut dp = out[kb + l];
                let scale = apply_backtrack(
                    st,
                    p_all,
                    i + l,
                    e_all[i + l],
                    vp4[l] + vn4[l],
                    &mut dp,
                    neg_margin,
                );
                out[kb + l] = dp;
                if scale != 1.0 && !is_exceptional(st, i + l) {
                    events.push(i + l);
                }
            }
        }
        d_row[kb..kb + LANES].copy_from_slice(&d4);
        k += LANES;
    }
    for i in lo + main..hi {
        let e_m = e_all[i - 1];
        let e_i = e_all[i];
        let e_p = e_all[i + 1];
        let f = st.tscale[i];
        let vp = ring_send(f, e_i, e_m);
        let vn = ring_send(f, e_i, e_p);
        let vip = ring_send(st.tscale[i - 1], e_m, e_i);
        let vin = ring_send(st.tscale[i + 1], e_p, e_i);
        let kk = i - start;
        let mut dp = out[kk];
        let scale = apply_backtrack(st, p_all, i, e_i, vp + vn, &mut dp, neg_margin);
        out[kk] = dp;
        if scale != 1.0 && !is_exceptional(st, i) {
            events.push(i);
        }
        d_row[kk] = (vip + vin) - (vp + vn);
    }
    events
}

/// Pass 3: re-does, fully scalar, every exceptional node of the shard —
/// the fused sweep backtracked them against a wrong `sent` total (it
/// assumes exactly two ring edges). Re-derives the raw gradient move
/// (identical expression and bits to pass 1), rebuilds the true `sent`
/// from the edges that exist plus all extras — storing each chord
/// donation in the node's extras slots as it goes, scaled afterwards if
/// the node's backtracking demands it — and overwrites the node's
/// `p_hat`; nodes whose true backtracking scaled their donations join
/// the correction's event list. Empty (and free) for a pure ring;
/// `O(chord endpoints)` for the deployment topologies.
#[allow(clippy::too_many_arguments)]
fn patch_exceptional_pass(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    range: Range<usize>,
    out: &mut [f64],
    tx: &mut [f64],
    tx_base: usize,
    events: &mut Vec<usize>,
) {
    if st.exceptional.is_empty() {
        return;
    }
    let n = st.n;
    let neg_margin = -rp.margin;
    let a = st.exceptional.partition_point(|x| x.node < range.start);
    let b = st.exceptional.partition_point(|x| x.node < range.end);
    for ex in &st.exceptional[a..b] {
        let i = ex.node;
        let e_i = e_all[i];
        let f = st.tscale[i];
        let mut dp = gradient_step(
            p_all[i],
            e_i,
            st.b[i],
            st.two_c[i],
            st.p_min[i],
            st.p_max[i],
            rp.eta,
            neg_margin,
            rp.step_power,
        );
        let prev = if i == 0 { n - 1 } else { i - 1 };
        let next = if i + 1 == n { 0 } else { i + 1 };
        let vp = if ex.has_prev {
            ring_send(f, e_i, e_all[prev])
        } else {
            0.0
        };
        let vn = if ex.has_next {
            ring_send(f, e_i, e_all[next])
        } else {
            0.0
        };
        let mut sent = vp + vn;
        let (xlo, xhi) = (st.extra_offsets[i], st.extra_offsets[i + 1]);
        for x in xlo..xhi {
            let v = ring_send(f, e_i, e_all[st.extra_dst[x]]);
            tx[x - tx_base] = v;
            sent += v;
        }
        let scale = apply_backtrack(st, p_all, i, e_i, sent, &mut dp, neg_margin);
        out[i - range.start] = dp;
        if scale != 1.0 {
            events.push(i);
            for x in xlo..xhi {
                tx[x - tx_base] *= scale;
            }
        }
    }
}

/// Node `i`'s exact ring delta, rebuilt from sealed state with every
/// edge gated and every neighbor's backtracking scale re-derived — the
/// overwrite applied to nodes the sweep's speculation missed. The
/// expression shape matches the sweep's `(in) − (out)` exactly, and each
/// term comes from [`ring_sends_scaled`], so a send keeps identical bits
/// in its sender's and its receiver's delta no matter which path (sweep
/// or correction) computed each side.
fn true_ring_delta(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    i: usize,
) -> f64 {
    let n = st.n;
    let prev = if i == 0 { n - 1 } else { i - 1 };
    let next = if i + 1 == n { 0 } else { i + 1 };
    let vip = ring_sends_scaled(st, rp, p_all, e_all, prev).1;
    let vin = ring_sends_scaled(st, rp, p_all, e_all, next).0;
    let (vp, vn, _) = ring_sends_scaled(st, rp, p_all, e_all, i);
    (vip + vin) - (vp + vn)
}

/// Pass 4: the delta correction. Every node ring-adjacent to a trigger —
/// a structural defect (static) or a backtrack-scaled node (this
/// round's events) — gets its speculative `d` replaced by
/// [`true_ring_delta`]. The two ring neighbors just outside the shard
/// are the one trigger source another worker cannot see, so their
/// scaled status is re-derived from sealed state directly. Free in the
/// steady state: no defects on a chorded ring, no events once the
/// trajectory is feasible.
fn correct_affected_deltas(
    st: &FastState,
    rp: &FastRoundParams,
    p_all: &[f64],
    e_all: &[f64],
    range: Range<usize>,
    d_row: &mut [f64],
    events: &[usize],
) {
    let n = st.n;
    if range.is_empty() {
        return;
    }
    let mut triggers: Vec<usize> = Vec::new();
    if !st.defects.is_empty() {
        let a = st.defects.partition_point(|&j| j < range.start);
        let b = st.defects.partition_point(|&j| j < range.end);
        triggers.extend_from_slice(&st.defects[a..b]);
    }
    triggers.extend_from_slice(events);
    let jp = if range.start == 0 {
        n - 1
    } else {
        range.start - 1
    };
    let jn = if range.end == n { 0 } else { range.end };
    for j in [jp, jn] {
        if !range.contains(&j)
            && !triggers.contains(&j)
            && (st.defects.binary_search(&j).is_ok()
                || ring_sends_scaled(st, rp, p_all, e_all, j).2 != 1.0)
        {
            triggers.push(j);
        }
    }
    if triggers.is_empty() {
        return;
    }
    let mut affected: Vec<usize> = Vec::new();
    for &j in &triggers {
        let prev = if j == 0 { n - 1 } else { j - 1 };
        let next = if j + 1 == n { 0 } else { j + 1 };
        for i in [prev, j, next] {
            if range.contains(&i) {
                affected.push(i);
            }
        }
    }
    affected.sort_unstable();
    affected.dedup();
    for &i in &affected {
        d_row[i - range.start] = true_ring_delta(st, rp, p_all, e_all, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::units::Watts;
    use dpc_models::workload::ClusterBuilder;

    #[test]
    fn state_pads_to_lane_multiples_and_mirrors_curves() {
        let utilities = ClusterBuilder::new(10).seed(3).build().utilities();
        let graph = Graph::ring(10);
        let st = FastState::new(&utilities, &graph, 1.2);
        assert_eq!(st.len(), 10);
        assert!(!st.is_empty());
        assert_eq!(st.b.len() % LANES, 0);
        assert!(st.b.len() >= 10);
        for (i, u) in utilities.iter().enumerate() {
            let (_, b, c) = u.coefficients();
            assert_eq!(st.b[i], b);
            assert_eq!(st.two_c[i], 2.0 * c);
            assert_eq!(st.p_min[i], u.p_min().0);
            assert_eq!(st.p_max[i], u.p_max().0);
            // Ring degree 2: scale = 1.2 · 0.5 / 2.
            assert_eq!(st.tscale[i], 1.2 * 0.5 / 2.0);
        }
        // Padding lanes are inert zeros.
        for i in 10..st.b.len() {
            assert_eq!(st.tscale[i], 0.0);
            assert_eq!(st.p_max[i], 0.0);
        }
        // A pure ring decomposes with no exceptional nodes, no defects,
        // and no extras.
        assert!(st.exceptional.is_empty());
        assert!(st.defects.is_empty());
        assert!(st.extra_dst.is_empty());
    }

    #[test]
    fn ring_classification_splits_chords_into_extras() {
        let n = 16;
        let utilities = ClusterBuilder::new(n).seed(5).build().utilities();
        let graph = Graph::ring_with_chords(n, 3);
        let st = FastState::new(&utilities, &graph, 1.0);
        // Every node keeps both ring edges; only chord endpoints are
        // exceptional, no node is a structural defect, and only chords
        // become extras.
        assert!(st.exceptional.iter().all(|x| x.has_prev && x.has_next));
        assert!(st.defects.is_empty());
        let expected_extras = graph.flat_neighbors().len() - 2 * n;
        assert_eq!(st.extra_dst.len(), expected_extras);
        assert_eq!(st.extra_offsets[n], expected_extras);
        let chord_nodes: Vec<usize> = (0..n)
            .filter(|&i| st.extra_offsets[i + 1] > st.extra_offsets[i])
            .collect();
        let exceptional_nodes: Vec<usize> = st.exceptional.iter().map(|x| x.node).collect();
        assert_eq!(exceptional_nodes, chord_nodes);
        // The incoming index lists, per node, exactly the buffer slots
        // of the transfers aimed at it, in ascending sender order.
        let mut expected_in: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (x, &j) in st.extra_dst.iter().enumerate() {
            expected_in[j].push(x);
        }
        for (i, expected) in expected_in.iter().enumerate() {
            assert_eq!(
                &st.extra_in_slot[st.extra_in_offsets[i]..st.extra_in_offsets[i + 1]],
                &expected[..],
                "incoming slots of node {i}"
            );
        }
        assert_eq!(st.extras_len(), expected_extras);
    }

    #[test]
    fn non_ring_graphs_fall_back_to_exceptional_nodes() {
        // A path: the wraparound edge (0, n−1) is missing, so both ends
        // are exceptional *defects*; a long chord from 0 lands in the
        // extras.
        let n = 6;
        let utilities = ClusterBuilder::new(n).seed(2).build().utilities();
        let graph =
            Graph::from_edges(n, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 3)]).unwrap();
        let st = FastState::new(&utilities, &graph, 1.0);
        let nodes: Vec<usize> = st.exceptional.iter().map(|x| x.node).collect();
        assert_eq!(nodes, vec![0, 3, 5]);
        assert!(!st.exceptional[0].has_prev && st.exceptional[0].has_next);
        assert!(st.exceptional[1].has_prev && st.exceptional[1].has_next);
        assert!(st.exceptional[2].has_prev && !st.exceptional[2].has_next);
        // Only the two path ends are defects; node 3 is chord-only.
        assert_eq!(st.defects, vec![0, 5]);
        // The chord 0 ↔ 3 is the only extra pair.
        assert_eq!(st.extra_dst.len(), 2);
        assert_eq!(st.extra_dst[st.extra_offsets[0]], 3);
        assert_eq!(st.extra_dst[st.extra_offsets[3]], 0);
    }

    #[test]
    fn fast_kernel_matches_reference_within_rounding_on_one_round() {
        // One round from a fresh start: the only differences between the
        // kernels are reassociation and the hoisted reciprocal, so a
        // single application must agree to ulp-scale — not bitwise, but
        // far below a watt. The fast tier stores no transfers, so the
        // per-slot comparison re-derives each virtual send the way a
        // receiver would.
        use crate::diba::{node_action, NodeParams};
        let n = 64;
        let utilities = ClusterBuilder::new(n).seed(9).build().utilities();
        let graph = Graph::ring_with_chords(n, 3);
        let problem =
            crate::problem::PowerBudgetProblem::new(utilities.clone(), Watts(170.0 * n as f64))
                .unwrap();
        let params = NodeParams {
            eta: 2.5,
            margin: 1e-3,
            step_power: 0.7,
            step_transfer: 1.2,
        };
        let st = FastState::new(&utilities, &graph, params.step_transfer);
        let mut p: Vec<f64> = utilities.iter().map(|u| u.p_min().0 + 10.0).collect();
        let budget = problem.budget().0;
        let residual = p.iter().sum::<f64>() - budget;
        let mut e = vec![residual / n as f64; n];

        let rp = FastRoundParams {
            eta: params.eta,
            margin: params.margin,
            step_power: params.step_power,
        };
        let mut p_hat = vec![0.0; n];
        let mut d = vec![0.0; n];
        let mut tx = vec![0.0; st.extras_len()];
        {
            let p_s = SharedSlice::new(&mut p);
            let e_s = SharedSlice::new(&mut e);
            let ph = SharedSlice::new(&mut p_hat);
            let d_s = SharedSlice::new(&mut d);
            let tx_s = SharedSlice::new(&mut tx);
            phase_a_fast(&st, &rp, &p_s, &e_s, 0..n, &ph, &d_s, &tx_s);
        }
        let offsets = graph.offsets();
        let flat = graph.flat_neighbors();
        for i in 0..n {
            let row = &flat[offsets[i]..offsets[i + 1]];
            let neighbor_e: Vec<f64> = row.iter().map(|&j| e[j]).collect();
            let reference = node_action(&utilities[i], p[i], e[i], &neighbor_e, &params);
            assert!(
                (reference.dp - p_hat[i]).abs() < 1e-9,
                "node {i}: dp {} vs {}",
                reference.dp,
                p_hat[i]
            );
            // Walk the CSR row with the same classification rule the
            // constructor uses: ring slots re-derived the way a
            // correction would, chord slots read from the extras buffer
            // the way phase B would.
            let (vp, vn, _) = ring_sends_scaled(&st, &rp, &p, &e, i);
            let prev = if i == 0 { n - 1 } else { i - 1 };
            let next = if i + 1 == n { 0 } else { i + 1 };
            let (mut prev_taken, mut next_taken) = (false, false);
            let mut x = st.extra_offsets[i];
            for (k, t) in reference.transfers.iter().enumerate() {
                let j = row[k];
                let got = if !prev_taken && j == prev {
                    prev_taken = true;
                    vp
                } else if !next_taken && j == next {
                    next_taken = true;
                    vn
                } else {
                    x += 1;
                    tx[x - 1]
                };
                assert!((t - got).abs() < 1e-9, "node {i} slot {k}: {t} vs {got}");
            }
            assert_eq!(x, st.extra_offsets[i + 1], "node {i} extras slot count");
        }
    }

    #[test]
    fn fast_phases_conserve_the_residual_invariant_across_shards() {
        // Run phase A + phase B over split shards exactly as the round
        // engine would and check the trajectory (and the deferred
        // max-|dp| reduction) is bitwise identical to the single-shard
        // run while Σe tracks its seeded invariant.
        let n = 37; // odd, so shard cuts and lane tails all exercise
        let utilities = ClusterBuilder::new(n).seed(11).build().utilities();
        let graph = Graph::ring_with_chords(n, 2);
        let st = FastState::new(&utilities, &graph, 1.2);
        let rp = FastRoundParams {
            eta: 2.0,
            margin: 1e-3,
            step_power: 0.6,
        };
        let run = |cuts: &[usize]| {
            let mut p: Vec<f64> = utilities.iter().map(|u| u.p_min().0 + 12.0).collect();
            let mut e = vec![-2.0; n];
            let mut p_hat = vec![0.0; n];
            let mut d = vec![0.0; n];
            let mut tx = vec![0.0; st.extras_len()];
            let mut max_step = 0.0_f64;
            for _ in 0..50 {
                let p_s = SharedSlice::new(&mut p);
                let e_s = SharedSlice::new(&mut e);
                let ph = SharedSlice::new(&mut p_hat);
                let d_s = SharedSlice::new(&mut d);
                let tx_s = SharedSlice::new(&mut tx);
                for w in 0..cuts.len() - 1 {
                    phase_a_fast(&st, &rp, &p_s, &e_s, cuts[w]..cuts[w + 1], &ph, &d_s, &tx_s);
                }
                max_step = 0.0;
                for w in 0..cuts.len() - 1 {
                    let m = phase_b_fast(&st, cuts[w]..cuts[w + 1], &p_s, &e_s, &ph, &d_s, &tx_s);
                    max_step = max_step.max(m);
                }
            }
            (p, e, max_step)
        };
        let (p1, e1, m1) = run(&[0, n]);
        let (p3, e3, m3) = run(&[0, 5, 19, n]);
        assert_eq!(p1, p3, "shard cuts changed the fast trajectory");
        assert_eq!(e1, e3);
        assert_eq!(m1, m3, "shard cuts changed the max-|dp| reduction");
        // Σe was seeded at −2·n rather than the true residual, so the
        // *change* must balance: Σe − seed == Σp − Σp_seed.
        let seeded: f64 = utilities.iter().map(|u| u.p_min().0 + 12.0).sum();
        let expected = -2.0 * n as f64 + (p1.iter().sum::<f64>() - seeded);
        assert!(
            (e1.iter().sum::<f64>() - expected).abs() < 1e-9,
            "transfer folding leaks slack"
        );
    }

    #[test]
    fn backtracking_events_stay_bitwise_across_shard_cuts() {
        // A huge margin with nodes pinned near their lower box bound
        // forces the shed-then-scale path: donations get scaled down,
        // the sweep's speculative deltas are wrong, and the event
        // correction must repair them — including across shard cuts,
        // where a neighbor's scaled status is re-derived rather than
        // observed (the single-node shard 6..7 isolates both directions).
        let n = 13;
        let utilities = ClusterBuilder::new(n).seed(4).build().utilities();
        let graph = Graph::ring_with_chords(n, 2);
        let st = FastState::new(&utilities, &graph, 1.4);
        let rp = FastRoundParams {
            eta: 2.0,
            margin: 1.9,
            step_power: 0.6,
        };
        let run = |cuts: &[usize]| {
            let mut p: Vec<f64> = utilities.iter().map(|u| u.p_min().0 + 0.3).collect();
            // Every third node sits just under the margin (tiny slack
            // bound) while its neighbors hold plenty — big donations the
            // shed budget of 0.3 W cannot finance, so scaling must kick
            // in.
            let mut e: Vec<f64> = (0..n)
                .map(|i| if i % 3 == 0 { -2.0 } else { -0.5 })
                .collect();
            let p_seed: f64 = p.iter().sum();
            let e_seed: f64 = e.iter().sum();
            let mut p_hat = vec![0.0; n];
            let mut d = vec![0.0; n];
            let mut tx = vec![0.0; st.extras_len()];
            let mut scaled = 0usize;
            for _ in 0..30 {
                let p_s = SharedSlice::new(&mut p);
                let e_s = SharedSlice::new(&mut e);
                let ph = SharedSlice::new(&mut p_hat);
                let d_s = SharedSlice::new(&mut d);
                let tx_s = SharedSlice::new(&mut tx);
                for w in 0..cuts.len() - 1 {
                    scaled +=
                        phase_a_fast(&st, &rp, &p_s, &e_s, cuts[w]..cuts[w + 1], &ph, &d_s, &tx_s);
                }
                for w in 0..cuts.len() - 1 {
                    phase_b_fast(&st, cuts[w]..cuts[w + 1], &p_s, &e_s, &ph, &d_s, &tx_s);
                }
            }
            let drift = (e.iter().sum::<f64>() - e_seed) - (p.iter().sum::<f64>() - p_seed);
            (p, e, scaled, drift)
        };
        let (p1, e1, s1, drift1) = run(&[0, n]);
        let (p2, e2, s2, drift2) = run(&[0, 6, 7, n]);
        assert!(s1 > 0, "scenario never exercised the donation-scaling path");
        assert_eq!(s1, s2, "shard cuts changed which nodes scaled");
        assert_eq!(p1, p2, "shard cuts changed the fast trajectory");
        assert_eq!(e1, e2);
        // Scaled sends must still cancel exactly between both endpoints.
        assert!(
            drift1.abs() < 1e-9 && drift2.abs() < 1e-9,
            "event correction leaks slack: {drift1} / {drift2}"
        );
    }
}
