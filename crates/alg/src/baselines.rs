//! Baseline allocators the paper compares against.
//!
//! * [`uniform`] — split the budget equally (the baseline in Fig. 4.3 and
//!   Fig. 3.12).
//! * [`greedy_throughput_per_watt`] — the prior-work greedy of Chapter 3
//!   ("previous-greedy", after Nathuji et al. / Rajamani et al.): servers
//!   with higher current throughput per watt are allocated more power.

use crate::problem::{Allocation, PowerBudgetProblem};
use dpc_models::units::Watts;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Equal-share allocation with box clamping.
///
/// Servers whose box clips the equal share are pinned to the nearest bound
/// and the residual is re-split among the rest (water-filling on a constant
/// objective), so the full budget is spent whenever `Σ p_max` allows.
pub fn uniform(problem: &PowerBudgetProblem) -> Allocation {
    let n = problem.len();
    let mut powers = vec![Watts::ZERO; n];
    let mut fixed = vec![false; n];
    let mut remaining = problem.budget().min(problem.max_total());
    let mut active = n;

    // At most n rounds: every round either fixes at least one server or
    // terminates.
    while active > 0 {
        let share = remaining / active as f64;
        let mut newly_fixed = 0usize;
        for (i, u) in problem.utilities().iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let clamped = share.clamp(u.p_min(), u.p_max());
            if (clamped - share).abs() > Watts(1e-12) {
                powers[i] = clamped;
                fixed[i] = true;
                remaining -= clamped;
                newly_fixed += 1;
            }
        }
        if newly_fixed == 0 {
            for (i, u) in problem.utilities().iter().enumerate() {
                if !fixed[i] {
                    powers[i] = share.clamp(u.p_min(), u.p_max());
                }
            }
            break;
        }
        active -= newly_fixed;
    }
    Allocation::new(powers)
}

#[derive(Debug)]
struct Candidate {
    ratio: f64,
    server: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.ratio == other.ratio && self.server == other.server
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| other.server.cmp(&self.server))
    }
}

/// Prior-work greedy: start everyone at `p_min` and hand out `increment`-
/// sized slices of the remaining budget to the server with the highest
/// *current throughput per watt*, re-ranking after every slice.
///
/// As the paper observes (Section 3.2, observation 3), ranking by the
/// current ratio ignores curve crossovers, which is exactly why this
/// baseline underperforms at tight budgets.
///
/// # Panics
///
/// Panics if `increment` is not strictly positive.
pub fn greedy_throughput_per_watt(problem: &PowerBudgetProblem, increment: Watts) -> Allocation {
    assert!(increment > Watts::ZERO, "increment must be positive");
    let mut powers: Vec<Watts> = problem.utilities().iter().map(|u| u.p_min()).collect();
    let mut remaining = problem.budget() - powers.iter().copied().sum::<Watts>();

    let ratio = |i: usize, p: Watts| {
        let u = problem.utility(i);
        u.value(p) / p.0.max(1e-12)
    };

    let mut heap: BinaryHeap<Candidate> = (0..problem.len())
        .filter(|&i| powers[i] < problem.utility(i).p_max())
        .map(|i| Candidate {
            ratio: ratio(i, powers[i]),
            server: i,
        })
        .collect();

    while remaining > Watts(1e-9) {
        let Some(best) = heap.pop() else { break };
        let i = best.server;
        // Stale entry: the ratio changed since insertion.
        let current = ratio(i, powers[i]);
        if (current - best.ratio).abs() > 1e-12 {
            heap.push(Candidate {
                ratio: current,
                server: i,
            });
            continue;
        }
        let u = problem.utility(i);
        let step = increment.min(u.p_max() - powers[i]).min(remaining);
        if step <= Watts::ZERO {
            continue;
        }
        powers[i] += step;
        remaining -= step;
        if powers[i] < u.p_max() {
            heap.push(Candidate {
                ratio: ratio(i, powers[i]),
                server: i,
            });
        }
    }
    Allocation::new(powers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use dpc_models::workload::ClusterBuilder;

    fn problem(n: usize, budget: f64, seed: u64) -> PowerBudgetProblem {
        let c = ClusterBuilder::new(n).seed(seed).build();
        PowerBudgetProblem::new(c.utilities(), Watts(budget)).unwrap()
    }

    #[test]
    fn uniform_splits_equally_when_inside_boxes() {
        let p = problem(10, 1600.0, 1);
        let a = uniform(&p);
        for &pw in a.powers() {
            assert!((pw - Watts(160.0)).abs() < Watts(1e-9));
        }
        assert!(p.is_feasible(&a, Watts(1e-6)));
    }

    #[test]
    fn uniform_clamps_to_peak_and_respects_budget() {
        let p = problem(10, 50_000.0, 1);
        let a = uniform(&p);
        for (&pw, u) in a.powers().iter().zip(p.utilities()) {
            assert_eq!(pw, u.p_max());
        }
        let tight = problem(10, 1550.0, 1); // barely above 10·min_full
        let a = uniform(&tight);
        assert!(tight.is_feasible(&a, Watts(1e-6)));
        assert!((a.total() - tight.budget()).abs() < Watts(1e-6));
    }

    #[test]
    fn greedy_is_feasible_and_spends_budget() {
        let p = problem(50, 8_200.0, 2);
        let a = greedy_throughput_per_watt(&p, Watts(1.0));
        assert!(p.is_feasible(&a, Watts(1e-6)));
        assert!((a.total() - p.budget()).abs() < Watts(1e-6));
    }

    #[test]
    fn oracle_dominates_both_baselines() {
        for &budget in &[8_000.0, 8_500.0, 9_000.0] {
            let p = problem(50, budget, 3);
            let best = p.total_utility(&centralized::solve(&p).allocation);
            let uni = p.total_utility(&uniform(&p));
            let grd = p.total_utility(&greedy_throughput_per_watt(&p, Watts(1.0)));
            assert!(best >= uni - 1e-9, "budget {budget}");
            assert!(best >= grd - 1e-9, "budget {budget}");
        }
    }

    #[test]
    fn greedy_differs_from_uniform_on_heterogeneous_workloads() {
        let p = problem(50, 8_200.0, 4);
        let a = greedy_throughput_per_watt(&p, Watts(1.0));
        let u = uniform(&p);
        assert!(a.max_abs_diff(&u) > Watts(1.0));
    }

    #[test]
    #[should_panic(expected = "increment must be positive")]
    fn greedy_rejects_zero_increment() {
        let p = problem(2, 400.0, 1);
        let _ = greedy_throughput_per_watt(&p, Watts::ZERO);
    }
}
