//! Round-level telemetry: watch a run from the inside.
//!
//! The paper's headline claims are *trajectory* claims — how fast `Σp`
//! approaches the cap, how the residual mass drains, how many messages that
//! costs (Ch. 4, Figs. 4.3–4.8 and Table 4.2) — yet a solver that only
//! exposes its final allocation cannot substantiate any of them. This
//! module adds a recording layer every engine threads through:
//!
//! * [`RoundRecord`] — one fixed-size, `Copy` sample per round: residual
//!   aggregates (`Σe`, `max |eᵢ|`), power aggregates (`Σp`, ‖p‖₂), message
//!   accounting (sent / dropped / duplicated / bounced / in flight), the
//!   fault ledger (escrow, stranded mass), and optional per-shard kernel
//!   timings from the parallel round engine.
//! * [`FaultEvent`] — a discrete record per fault-machinery action (crash,
//!   departure, restart, detection, escrow settlement) with the slack mass
//!   it moved.
//! * [`Ring`] — a fixed-capacity overwrite-oldest buffer that never
//!   allocates after construction, so steady-state recording is
//!   allocation-free. Each recorder has a single writer (worker 0 of the
//!   synchronous engine; the serial loop of the asynchronous run), so no
//!   locking is needed — per-worker timing slots are plain disjoint writes.
//! * Sinks — [`Telemetry::to_jsonl`] (structured trace, byte-reproducible
//!   for a fixed seed), [`Telemetry::to_csv`] (time series), and
//!   [`Telemetry::prometheus`] (text-exposition snapshot of the latest
//!   state plus cumulative counters).
//!
//! **Determinism contract.** Every value in a record is derived from the
//! solver's deterministic state with the same fixed-chunk reductions the
//! engines use ([`crate::exec::chunked_sum`]), and recording never touches
//! solver state or RNG streams — enabling telemetry leaves trajectories
//! bitwise identical, and a JSONL trace is a pure function of the
//! configuration and seed. The one exception is wall-clock shard timings,
//! which are recorded only when [`TelemetryConfig::timings`] is set and are
//! the only non-reproducible fields a sink will then emit.

use crate::primal_dual::PrimalDualResult;
use dpc_models::units::Watts;
use std::fmt::Write as _;

/// Shard-timing slots carried inline in each [`RoundRecord`]. Runs with
/// more workers fold the excess into the last slot (the record stays
/// `Copy` and fixed-size so the ring never allocates).
pub const MAX_TIMED_SHARDS: usize = 8;

/// Telemetry knob carried by `DibaConfig` / `SimConfig`. Disabled by
/// default: the engines then skip recording entirely (one branch per
/// round, no allocation, no measurable throughput cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record per-round telemetry.
    pub enabled: bool,
    /// Rounds (and fault events) retained; older entries are overwritten.
    pub capacity: usize,
    /// Also record wall-clock per-shard kernel timings. These are the only
    /// non-deterministic fields; leave off for byte-reproducible traces.
    pub timings: bool,
}

impl TelemetryConfig {
    /// Default ring capacity, in rounds.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Telemetry disabled (the default).
    pub fn off() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
            timings: false,
        }
    }

    /// Telemetry enabled at the default capacity.
    pub fn on() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            ..Self::off()
        }
    }

    /// Telemetry enabled, retaining the last `rounds` rounds.
    pub fn with_capacity(rounds: usize) -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            capacity: rounds,
            timings: false,
        }
    }

    /// Enables wall-clock shard timings (non-reproducible fields).
    pub fn with_timings(mut self) -> TelemetryConfig {
        self.timings = true;
        self
    }

    /// Checks the knob is honorable (positive capacity when enabled).
    ///
    /// # Errors
    ///
    /// [`crate::problem::AlgError::InvalidConfig`] on a zero capacity.
    pub fn validate(&self) -> Result<(), crate::problem::AlgError> {
        if self.enabled && self.capacity == 0 {
            return Err(crate::problem::AlgError::InvalidConfig {
                what: "telemetry capacity must be positive when telemetry is enabled".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// One round's structured sample. Flat and `Copy` so the ring buffer holds
/// it inline; every solver fills the fields that apply to it and zeroes the
/// rest (a synchronous run has no in-flight mass; primal-dual has no
/// residual vector but does have a price).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundRecord {
    /// Round (or iteration) index, 1-based.
    pub round: u64,
    /// Budget `P` in effect (watts).
    pub budget: f64,
    /// Total power `Σp` (watts), fixed-chunk reduction.
    pub sum_p: f64,
    /// Euclidean norm of the power vector (watts).
    pub norm2_p: f64,
    /// Residual mass on the nodes `Σe` (watts), fixed-chunk reduction.
    pub sum_e: f64,
    /// Largest per-node residual magnitude `max |eᵢ|` (watts).
    pub max_abs_e: f64,
    /// Largest per-node power move of the round (watts); 0 when the solver
    /// does not track it.
    pub max_step: f64,
    /// Dual price λ (primal-dual only; 0 for the gossip solvers).
    pub lambda: f64,
    /// Messages sent this round.
    pub msgs_sent: u64,
    /// Messages dropped by link faults this round.
    pub msgs_dropped: u64,
    /// Duplicate deliveries injected this round.
    pub msgs_duplicated: u64,
    /// Transfer bounces (failed deliveries returning to sender) this round.
    pub msgs_bounced: u64,
    /// Messages in flight at the end of the round.
    pub in_flight: u64,
    /// Slack mass riding those in-flight messages (watts, ≤ 0).
    pub inflight_mass: f64,
    /// Escrowed residual mass of dead nodes (watts, ≤ 0).
    pub escrow_total: f64,
    /// Slack mass stranded by dead islands (watts, ≤ 0).
    pub stranded: f64,
    /// Live nodes.
    pub live: u64,
    /// Worker count of the round engine (1 for serial solvers).
    pub workers: u32,
    /// Wall-clock phase-A kernel nanoseconds per shard (all zero unless
    /// [`TelemetryConfig::timings`] is on); shards beyond
    /// [`MAX_TIMED_SHARDS`] fold into the last slot.
    pub shard_nanos: [u64; MAX_TIMED_SHARDS],
}

impl RoundRecord {
    /// The conservation identity evaluated on this record alone:
    /// `|Σe + in-flight + escrow + stranded − (Σp − P)|`. Zero (to rounding)
    /// for every DiBA ledger record; the invariant tests pin it.
    pub fn conservation_drift(&self) -> f64 {
        (self.sum_e + self.inflight_mass + self.escrow_total + self.stranded
            - (self.sum_p - self.budget))
            .abs()
    }
}

/// What a recorded fault-machinery action was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A node powered off silently; its `e − p` mass moved to escrow.
    Crash,
    /// A node left permanently (graceful farewell or management removal).
    Depart,
    /// A crashed node gathered enough headroom and booted.
    Restart,
    /// Failure detection pruned a link to a silent neighbor.
    Detect,
    /// A dead node's escrow was re-absorbed by its live neighbors.
    Settle,
    /// The total budget changed mid-run (warm re-solve); `mass` is the
    /// signed budget delta in watts, `node` is 0 (cluster-wide).
    Budget,
    /// A node's fitted utility curve was replaced mid-run (VM churn or a
    /// workload phase change); `mass` is the box-clamp power adjustment.
    Workload,
    /// A warm re-solve after a mutation reached rest; `mass` is the number
    /// of rounds the re-convergence took, `node` is 0 (cluster-wide).
    Reconverged,
}

impl FaultEventKind {
    /// Stable identifier used by the sinks.
    pub fn key(self) -> &'static str {
        match self {
            FaultEventKind::Crash => "crash",
            FaultEventKind::Depart => "depart",
            FaultEventKind::Restart => "restart",
            FaultEventKind::Detect => "detect",
            FaultEventKind::Settle => "settle",
            FaultEventKind::Budget => "budget",
            FaultEventKind::Workload => "workload",
            FaultEventKind::Reconverged => "reconverged",
        }
    }
}

/// A discrete fault-recovery event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Round the event fired in, 1-based.
    pub round: u64,
    /// Node the event concerns.
    pub node: usize,
    /// What happened.
    pub kind: FaultEventKind,
    /// Slack mass the event moved (watts; ≤ 0 for escrow flows, the boot
    /// headroom for restarts, 0 for pure detections).
    pub mass: f64,
}

/// One solved budget domain of a hierarchical run, flattened for sinks.
/// Built from [`crate::hierarchy::DomainReport`] rows; kept separate so the
/// telemetry layer does not depend on the tree solver.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainRecord {
    /// Slash-joined path from the root domain.
    pub path: String,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Servers in the subtree.
    pub servers: usize,
    /// Budget the parent assigned (watts).
    pub budget_w: f64,
    /// Hard cap, if configured (watts; NaN-free: `None` serializes as null).
    pub cap_w: Option<f64>,
    /// Power the subtree drew (watts).
    pub power_w: f64,
    /// The domain's demand price λ.
    pub price: f64,
    /// DiBA rounds the leaf used (0 for internal nodes and oracle leaves).
    pub rounds: u64,
}

/// Renders per-domain records as JSON Lines, one object per domain in
/// preorder. Byte-reproducible: every field is a pure function of the
/// problem and configuration.
pub fn domains_to_jsonl(domains: &[DomainRecord]) -> String {
    let mut out = String::new();
    for d in domains {
        let _ = write!(
            out,
            "{{\"type\":\"domain\",\"path\":\"{}\",\"depth\":{},\"servers\":{},\
             \"budget_w\":{},\"cap_w\":",
            d.path, d.depth, d.servers, d.budget_w,
        );
        match d.cap_w {
            Some(c) => {
                let _ = write!(out, "{c}");
            }
            None => out.push_str("null"),
        }
        let _ = writeln!(
            out,
            ",\"power_w\":{},\"price\":{},\"rounds\":{}}}",
            d.power_w, d.price, d.rounds,
        );
    }
    out
}

/// Fixed-capacity overwrite-oldest ring buffer with a single writer. The
/// backing storage is reserved once at construction; `push` never
/// allocates, so a recorder in the hot round loop is allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    pushed: u64,
}

impl<T: Copy> Ring<T> {
    /// A ring retaining the last `cap` entries (`cap` is clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> Ring<T> {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            pushed: 0,
        }
    }

    /// Appends an entry, overwriting the oldest once full.
    pub fn push(&mut self, value: T) {
        let idx = (self.pushed % self.cap as u64) as usize;
        if self.buf.len() < self.cap {
            debug_assert_eq!(idx, self.buf.len());
            self.buf.push(value);
        } else {
            self.buf[idx] = value;
        }
        self.pushed += 1;
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries ever pushed (including those overwritten).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Entries lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Retained entries in push order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            (self.pushed % self.cap as u64) as usize
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The most recently pushed entry.
    pub fn latest(&self) -> Option<&T> {
        if self.pushed == 0 {
            return None;
        }
        Some(&self.buf[((self.pushed - 1) % self.cap as u64) as usize])
    }
}

/// A run's recorder: the round ring, the fault-event ring, and cumulative
/// message counters that survive ring overwrites.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    config: TelemetryConfig,
    rounds: Ring<RoundRecord>,
    events: Ring<FaultEvent>,
    total_sent: u64,
    total_dropped: u64,
    total_duplicated: u64,
    total_bounced: u64,
    /// Static per-shard work estimate of the topology sharding (edge units),
    /// set by engines that shard — exposes the balance the work-balanced
    /// cuts achieved.
    shard_work: Vec<usize>,
}

impl Telemetry {
    /// A recorder for the given knob (which should be enabled).
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            config,
            rounds: Ring::with_capacity(config.capacity),
            events: Ring::with_capacity(config.capacity),
            total_sent: 0,
            total_dropped: 0,
            total_duplicated: 0,
            total_bounced: 0,
            shard_work: Vec::new(),
        }
    }

    /// The knob this recorder was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Records one round (single-writer: worker 0 or the serial loop).
    pub fn record_round(&mut self, record: RoundRecord) {
        self.total_sent += record.msgs_sent;
        self.total_dropped += record.msgs_dropped;
        self.total_duplicated += record.msgs_duplicated;
        self.total_bounced += record.msgs_bounced;
        self.rounds.push(record);
    }

    /// Records one fault-machinery event.
    pub fn record_event(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Installs the static per-shard work estimate of the current sharding.
    pub fn set_shard_work(&mut self, work: Vec<usize>) {
        self.shard_work = work;
    }

    /// The per-shard work estimate (empty for unsharded solvers).
    pub fn shard_work(&self) -> &[usize] {
        &self.shard_work
    }

    /// Retained round records, oldest first.
    pub fn rounds(&self) -> impl Iterator<Item = &RoundRecord> + '_ {
        self.rounds.iter()
    }

    /// Retained fault events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> + '_ {
        self.events.iter()
    }

    /// The latest round record.
    pub fn latest(&self) -> Option<&RoundRecord> {
        self.rounds.latest()
    }

    /// Rounds ever recorded (including overwritten ones).
    pub fn rounds_recorded(&self) -> u64 {
        self.rounds.pushed()
    }

    /// Fault events ever recorded.
    pub fn events_recorded(&self) -> u64 {
        self.events.pushed()
    }

    /// Round records currently retained.
    pub fn rounds_retained(&self) -> usize {
        self.rounds.len()
    }

    /// Cumulative `(sent, dropped, duplicated, bounced)` message totals
    /// across the whole run, unaffected by ring overwrites.
    pub fn message_totals(&self) -> (u64, u64, u64, u64) {
        (
            self.total_sent,
            self.total_dropped,
            self.total_duplicated,
            self.total_bounced,
        )
    }

    /// Converts a primal-dual solve's history into round records: the
    /// coordinator knows the global residual `Σp − P` exactly, and every
    /// iteration funnels `2n` packets through it (the Table 4.2 accounting).
    pub fn record_primal_dual(&mut self, n: usize, budget: Watts, result: &PrimalDualResult) {
        for (k, tr) in result.history.iter().enumerate() {
            self.record_round(RoundRecord {
                round: (k + 1) as u64,
                budget: budget.0,
                sum_p: tr.total_power.0,
                sum_e: tr.total_power.0 - budget.0,
                lambda: tr.lambda,
                msgs_sent: 2 * n as u64,
                live: n as u64,
                workers: 1,
                ..RoundRecord::default()
            });
        }
    }

    /// Renders the recorder as JSON Lines: one object per retained entry,
    /// rounds and fault events merged chronologically (an event sorts
    /// before the record of the round it fired in). Byte-reproducible for
    /// a fixed configuration and seed as long as timings are off.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut rounds = self.rounds.iter().peekable();
        let mut events = self.events.iter().peekable();
        loop {
            let take_event = match (rounds.peek(), events.peek()) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(r), Some(e)) => e.round <= r.round,
            };
            if take_event {
                let e = events.next().expect("peeked");
                let _ = writeln!(
                    out,
                    "{{\"type\":\"fault\",\"round\":{},\"node\":{},\"kind\":\"{}\",\"mass_w\":{}}}",
                    e.round,
                    e.node,
                    e.kind.key(),
                    e.mass,
                );
            } else {
                let r = rounds.next().expect("peeked");
                let _ = write!(
                    out,
                    "{{\"type\":\"round\",\"round\":{},\"budget_w\":{},\"sum_p_w\":{},\
                     \"norm2_p\":{},\"sum_e_w\":{},\"max_abs_e_w\":{},\"max_step_w\":{},\
                     \"lambda\":{},\"msgs_sent\":{},\"msgs_dropped\":{},\"msgs_duplicated\":{},\
                     \"msgs_bounced\":{},\"in_flight\":{},\"inflight_mass_w\":{},\
                     \"escrow_w\":{},\"stranded_w\":{},\"live\":{}",
                    r.round,
                    r.budget,
                    r.sum_p,
                    r.norm2_p,
                    r.sum_e,
                    r.max_abs_e,
                    r.max_step,
                    r.lambda,
                    r.msgs_sent,
                    r.msgs_dropped,
                    r.msgs_duplicated,
                    r.msgs_bounced,
                    r.in_flight,
                    r.inflight_mass,
                    r.escrow_total,
                    r.stranded,
                    r.live,
                );
                if self.config.timings {
                    let _ = write!(out, ",\"workers\":{},\"shard_nanos\":[", r.workers);
                    for (k, ns) in r.shard_nanos.iter().enumerate() {
                        let _ = write!(out, "{}{ns}", if k > 0 { "," } else { "" });
                    }
                    out.push(']');
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// Renders the retained round records as a CSV time series (fault
    /// events are omitted — they live in the JSONL trace).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,budget_w,sum_p_w,norm2_p,sum_e_w,max_abs_e_w,max_step_w,lambda,\
             msgs_sent,msgs_dropped,msgs_duplicated,msgs_bounced,in_flight,\
             inflight_mass_w,escrow_w,stranded_w,live\n",
        );
        for r in self.rounds.iter() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.round,
                r.budget,
                r.sum_p,
                r.norm2_p,
                r.sum_e,
                r.max_abs_e,
                r.max_step,
                r.lambda,
                r.msgs_sent,
                r.msgs_dropped,
                r.msgs_duplicated,
                r.msgs_bounced,
                r.in_flight,
                r.inflight_mass,
                r.escrow_total,
                r.stranded,
                r.live,
            );
        }
        out
    }

    /// Renders a Prometheus-style text-exposition snapshot: cumulative
    /// counters over the whole run plus gauges from the latest record.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "dpc_rounds_total",
            "Rounds recorded",
            self.rounds.pushed(),
        );
        counter(
            &mut out,
            "dpc_msgs_sent_total",
            "Messages sent",
            self.total_sent,
        );
        counter(
            &mut out,
            "dpc_msgs_dropped_total",
            "Messages dropped by link faults",
            self.total_dropped,
        );
        counter(
            &mut out,
            "dpc_msgs_duplicated_total",
            "Duplicate deliveries injected",
            self.total_duplicated,
        );
        counter(
            &mut out,
            "dpc_msgs_bounced_total",
            "Transfer bounces",
            self.total_bounced,
        );
        counter(
            &mut out,
            "dpc_fault_events_total",
            "Fault-machinery events",
            self.events.pushed(),
        );
        if let Some(r) = self.rounds.latest() {
            gauge(&mut out, "dpc_budget_watts", "Budget P in effect", r.budget);
            gauge(&mut out, "dpc_sum_p_watts", "Total power", r.sum_p);
            gauge(
                &mut out,
                "dpc_sum_e_watts",
                "Residual mass on nodes",
                r.sum_e,
            );
            gauge(
                &mut out,
                "dpc_max_abs_e_watts",
                "Largest residual magnitude",
                r.max_abs_e,
            );
            gauge(&mut out, "dpc_lambda", "Dual price (primal-dual)", r.lambda);
            gauge(
                &mut out,
                "dpc_escrow_watts",
                "Escrowed dead-node mass",
                r.escrow_total,
            );
            gauge(
                &mut out,
                "dpc_stranded_watts",
                "Stranded slack mass",
                r.stranded,
            );
            gauge(
                &mut out,
                "dpc_in_flight",
                "Messages in flight",
                r.in_flight as f64,
            );
            gauge(&mut out, "dpc_live_nodes", "Live nodes", r.live as f64);
            if self.config.timings {
                let _ = writeln!(
                    out,
                    "# HELP dpc_shard_kernel_nanos Phase-A kernel wall-clock per shard"
                );
                let _ = writeln!(out, "# TYPE dpc_shard_kernel_nanos gauge");
                for (k, ns) in r
                    .shard_nanos
                    .iter()
                    .take(r.workers.max(1) as usize)
                    .enumerate()
                {
                    let _ = writeln!(out, "dpc_shard_kernel_nanos{{shard=\"{k}\"}} {ns}");
                }
            }
        }
        if !self.shard_work.is_empty() {
            let _ = writeln!(
                out,
                "# HELP dpc_shard_work Edge-work units per topology shard"
            );
            let _ = writeln!(out, "# TYPE dpc_shard_work gauge");
            for (k, w) in self.shard_work.iter().enumerate() {
                let _ = writeln!(out, "dpc_shard_work{{shard=\"{k}\"}} {w}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_the_latest_entries_in_order() {
        let mut ring: Ring<u64> = Ring::with_capacity(3);
        assert!(ring.is_empty());
        assert_eq!(ring.latest(), None);
        for v in 0..7 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 7);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(ring.latest(), Some(&6));
    }

    #[test]
    fn ring_push_never_reallocates() {
        let mut ring: Ring<RoundRecord> = Ring::with_capacity(16);
        let base = ring.buf.capacity();
        for round in 0..200 {
            ring.push(RoundRecord {
                round,
                ..RoundRecord::default()
            });
        }
        assert_eq!(ring.buf.capacity(), base, "ring grew in the hot loop");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring: Ring<u8> = Ring::with_capacity(0);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn config_validation_and_builders() {
        assert!(TelemetryConfig::off().validate().is_ok());
        assert!(TelemetryConfig::on().validate().is_ok());
        assert!(TelemetryConfig::with_capacity(10).enabled);
        assert!(TelemetryConfig::on().with_timings().timings);
        let bad = TelemetryConfig {
            enabled: true,
            capacity: 0,
            timings: false,
        };
        assert!(bad.validate().is_err());
        assert!(!TelemetryConfig::default().enabled);
    }

    fn record(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            budget: 100.0,
            sum_p: 95.0,
            sum_e: -5.0,
            msgs_sent: 10,
            msgs_dropped: 1,
            live: 4,
            workers: 2,
            ..RoundRecord::default()
        }
    }

    #[test]
    fn record_conservation_identity() {
        let r = record(1);
        assert!(r.conservation_drift() < 1e-12);
        let mut leaked = r;
        leaked.sum_e = -4.0;
        assert!((leaked.conservation_drift() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_merges_events_before_their_round() {
        let mut t = Telemetry::new(TelemetryConfig::on());
        t.record_round(record(1));
        t.record_event(FaultEvent {
            round: 2,
            node: 3,
            kind: FaultEventKind::Crash,
            mass: -7.5,
        });
        t.record_round(record(2));
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"round\"") && lines[0].contains("\"round\":1"));
        assert!(lines[1].contains("\"kind\":\"crash\"") && lines[1].contains("\"mass_w\":-7.5"));
        assert!(lines[2].contains("\"type\":\"round\"") && lines[2].contains("\"round\":2"));
        // Timings are excluded unless opted into.
        assert!(!lines[0].contains("shard_nanos"));
    }

    #[test]
    fn sinks_are_deterministic_and_well_formed() {
        let mut t = Telemetry::new(TelemetryConfig::on());
        for round in 1..=5 {
            t.record_round(record(round));
        }
        t.set_shard_work(vec![12, 11]);
        assert_eq!(t.to_jsonl(), t.clone().to_jsonl());
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("round,budget_w"));
        let prom = t.prometheus();
        assert!(prom.contains("dpc_rounds_total 5"));
        assert!(prom.contains("dpc_msgs_sent_total 50"));
        assert!(prom.contains("dpc_sum_p_watts 95"));
        assert!(prom.contains("dpc_shard_work{shard=\"1\"} 11"));
        assert_eq!(t.message_totals(), (50, 5, 0, 0));
    }

    #[test]
    fn domain_records_serialize_in_preorder_with_null_caps() {
        let domains = vec![
            DomainRecord {
                path: "dc".to_string(),
                depth: 0,
                servers: 8,
                budget_w: 1400.0,
                cap_w: None,
                power_w: 1399.5,
                price: 0.002,
                rounds: 0,
            },
            DomainRecord {
                path: "dc/rack0".to_string(),
                depth: 1,
                servers: 4,
                budget_w: 700.0,
                cap_w: Some(650.0),
                power_w: 650.0,
                price: 0.004,
                rounds: 120,
            },
        ];
        let jsonl = domains_to_jsonl(&domains);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"path\":\"dc\"") && lines[0].contains("\"cap_w\":null"));
        assert!(lines[1].contains("\"cap_w\":650") && lines[1].contains("\"rounds\":120"));
        assert_eq!(jsonl, domains_to_jsonl(&domains));
    }

    #[test]
    fn timings_opt_in_emits_shard_fields() {
        let mut t = Telemetry::new(TelemetryConfig::on().with_timings());
        let mut r = record(1);
        r.shard_nanos[0] = 42;
        t.record_round(r);
        let jsonl = t.to_jsonl();
        assert!(
            jsonl.contains("\"shard_nanos\":[42,0,0,0,0,0,0,0]"),
            "{jsonl}"
        );
        assert!(t
            .prometheus()
            .contains("dpc_shard_kernel_nanos{shard=\"0\"} 42"));
    }
}
