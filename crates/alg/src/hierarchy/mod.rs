//! Hierarchical decentralized budgeting — rack → row → datacenter budget
//! domains plus per-tenant caps that cut across the physical tree.
//!
//! Two layers live here:
//!
//! * [`HierarchicalRun`] — the original two-timescale facility of flat
//!   groups: every group runs DiBA on its own small ring (fast tier), and a
//!   facility-level rebalance periodically shifts budget toward
//!   above-price groups using one scalar per group (slow tier). At the
//!   joint fixed point all groups share one demand price, which is the flat
//!   problem's single-price KKT condition.
//! * [`BudgetTree`] — the general tree: each internal node allocates its
//!   budget over its children's *aggregate* demand curves (exact
//!   piecewise-linear composition, no nested bisection), leaves run the
//!   per-server solver (water-filling oracle or a DiBA ring), and nested
//!   constraints `Σ p_i ≤ P_rack ≤ P_row ≤ P_dc` hold at every level.
//!   [`TenantCap`]s add cross-cutting budgets `Σ_{i∈t} p_i ≤ C_t` solved by
//!   projected dual ascent on one multiplier per tenant.
//!
//! A two-level tree of 1k-server domains reaches 100k+ servers without any
//! single communication ring growing past the domain size.

mod curve;
mod flat;
mod tenant;
mod tree;

pub use curve::AggregateCurve;
pub use flat::HierarchicalRun;
pub use tenant::{TenantCap, TenantReport};
pub use tree::{BudgetTree, DomainChildren, DomainReport, DomainSpec, LeafSolver, TreeSolution};

/// Moves `target − Σ values` into the boxed `values`, proportionally to
/// each recipient's remaining room, iterating until the residue is
/// exhausted or every box is saturated. On return `Σ values` equals
/// `target` clamped into `[Σ lo, Σ hi]` (up to floating-point roundoff of
/// the final pass), and every value sits inside its `[lo, hi]` box.
///
/// This is the feasibility-preserving redistribution shared by the flat
/// rebalance and the tree's top-down propagation: price-driven *desired*
/// budgets are clamped into their boxes first, then the clamped residue is
/// spread so the parent's total is conserved exactly.
pub(crate) fn spread_residue(values: &mut [f64], lo: &[f64], hi: &[f64], target: f64) {
    debug_assert_eq!(values.len(), lo.len());
    debug_assert_eq!(values.len(), hi.len());
    for ((v, &l), &h) in values.iter_mut().zip(lo).zip(hi) {
        *v = v.clamp(l, h);
    }
    let lo_sum: f64 = lo.iter().sum();
    let hi_sum: f64 = hi.iter().sum();
    let target = target.clamp(lo_sum, hi_sum);
    let tol = 1e-9 * target.abs().max(1.0);
    // Each pass either lands exactly (proportional moves sum to the
    // residue) or saturates at least one box, so ≤ n+1 passes suffice.
    for _ in 0..=values.len() {
        let residue = target - values.iter().sum::<f64>();
        if residue.abs() <= tol {
            break;
        }
        if residue > 0.0 {
            let room: f64 = values.iter().zip(hi).map(|(v, &h)| h - *v).sum();
            if room <= 0.0 {
                break;
            }
            let f = (residue / room).min(1.0);
            for (v, &h) in values.iter_mut().zip(hi) {
                *v += (h - *v) * f;
            }
        } else {
            let room: f64 = values.iter().zip(lo).map(|(v, &l)| *v - l).sum();
            if room <= 0.0 {
                break;
            }
            let f = ((-residue) / room).min(1.0);
            for (v, &l) in values.iter_mut().zip(lo) {
                *v -= (*v - l) * f;
            }
        }
    }
}

#[cfg(test)]
mod residue_tests {
    use super::spread_residue;

    #[test]
    fn exact_conservation_inside_boxes() {
        let mut v = [10.0, 20.0, 30.0];
        let lo = [0.0, 0.0, 0.0];
        let hi = [100.0, 100.0, 100.0];
        spread_residue(&mut v, &lo, &hi, 90.0);
        assert!((v.iter().sum::<f64>() - 90.0).abs() < 1e-9);
        for ((x, &l), &h) in v.iter().zip(&lo).zip(&hi) {
            assert!(*x >= l && *x <= h);
        }
    }

    #[test]
    fn saturating_boxes_still_conserves_when_possible() {
        // First box saturates; the rest absorb the remainder.
        let mut v = [9.0, 1.0, 1.0];
        let lo = [0.0, 0.0, 0.0];
        let hi = [10.0, 50.0, 50.0];
        spread_residue(&mut v, &lo, &hi, 60.0);
        assert!((v.iter().sum::<f64>() - 60.0).abs() < 1e-9);
        assert!(v[0] <= 10.0 + 1e-12);
    }

    #[test]
    fn unreachable_target_clamps_to_box_sum() {
        let mut v = [1.0, 1.0];
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        spread_residue(&mut v, &lo, &hi, 100.0);
        assert!((v.iter().sum::<f64>() - 4.0).abs() < 1e-9);
        let mut w = [1.5, 1.5];
        let lo2 = [1.0, 1.0];
        spread_residue(&mut w, &lo2, &hi, 0.0);
        assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shrinking_respects_floors() {
        let mut v = [40.0, 40.0, 40.0];
        let lo = [35.0, 10.0, 10.0];
        let hi = [50.0, 50.0, 50.0];
        spread_residue(&mut v, &lo, &hi, 70.0);
        assert!((v.iter().sum::<f64>() - 70.0).abs() < 1e-9);
        assert!(v[0] >= 35.0 - 1e-12);
    }
}
