//! Exact aggregate demand curves.
//!
//! At dual price λ a server's optimal power is
//! `clamp((λ − b)/(2c), p_min, p_max)` — piecewise linear and nonincreasing
//! in λ. Sums, caps (`min(D(λ), C)`), and tenant price offsets all preserve
//! that form, so a whole subtree's demand `D(λ)` can be represented
//! *exactly* as a breakpoint list and inverted in closed form per segment.
//! This is what lets every internal node of a [`super::BudgetTree`] run
//! water-filling over its children without nested bisection: composing
//! curves bottom-up and inverting top-down reproduces the flat oracle's
//! single price to floating-point accuracy.

use dpc_models::throughput::QuadraticUtility;

/// The exact aggregate demand curve `D(λ)` of a set of concave members,
/// optionally clamped by a domain cap.
///
/// Stored as segment boundaries `bps` (ascending) with per-segment linear
/// demand `D(λ) = consts[k] + slopes[k]·λ` on `[bps[k], bps[k+1])`; for
/// `λ < bps[0]` the demand is the constant `ceil`. The curve is
/// nonincreasing and right-continuous (degenerate linear members introduce
/// jumps).
#[derive(Debug, Clone)]
pub struct AggregateCurve {
    bps: Vec<f64>,
    slopes: Vec<f64>,
    consts: Vec<f64>,
    floor: f64,
    ceil: f64,
}

impl AggregateCurve {
    /// Builds the exact demand curve of `members`, each with an additive
    /// price offset (a tenant multiplier μ: the member responds to
    /// `λ + μ`, equivalent to shifting its linear coefficient to `b − μ`).
    pub fn from_members<'a, I>(members: I) -> AggregateCurve
    where
        I: IntoIterator<Item = (&'a QuadraticUtility, f64)>,
    {
        // Delta events at each member's kink prices: entering its linear
        // region at λ = slope(p_max) − μ, pinning to p_min at
        // λ = slope(p_min) − μ.
        let mut events: Vec<(f64, f64, f64)> = Vec::new();
        let mut ceil = 0.0;
        let mut floor = 0.0;
        for (u, mu) in members {
            let (_, b, c) = u.coefficients();
            let (p_min, p_max) = (u.p_min().0, u.p_max().0);
            floor += p_min;
            ceil += p_max;
            let b_eff = b - mu;
            if c == 0.0 {
                // Degenerate linear member: a jump from p_max to p_min at
                // λ = b_eff.
                events.push((b_eff, 0.0, p_min - p_max));
            } else {
                let inv = 1.0 / (2.0 * c);
                let lambda_hi = b_eff + 2.0 * c * p_max; // < lambda_lo (c < 0)
                let lambda_lo = b_eff + 2.0 * c * p_min;
                events.push((lambda_hi, inv, -b_eff * inv - p_max));
                events.push((lambda_lo, -inv, b_eff * inv + p_min));
            }
        }
        Self::from_events(events, floor, ceil)
    }

    /// Sums several curves into the exact aggregate (floor/ceil add; the
    /// breakpoint set is the union).
    pub fn sum(curves: &[&AggregateCurve]) -> AggregateCurve {
        let mut events: Vec<(f64, f64, f64)> = Vec::new();
        let mut floor = 0.0;
        let mut ceil = 0.0;
        for c in curves {
            floor += c.floor;
            ceil += c.ceil;
            let mut prev = (0.0, c.ceil);
            for ((&bp, &s), &k) in c.bps.iter().zip(&c.slopes).zip(&c.consts) {
                events.push((bp, s - prev.0, k - prev.1));
                prev = (s, k);
            }
        }
        Self::from_events(events, floor, ceil)
    }

    fn from_events(mut events: Vec<(f64, f64, f64)>, floor: f64, ceil: f64) -> AggregateCurve {
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut bps = Vec::with_capacity(events.len());
        let mut slopes = Vec::with_capacity(events.len());
        let mut consts = Vec::with_capacity(events.len());
        let (mut s, mut k) = (0.0_f64, ceil);
        let mut i = 0;
        while i < events.len() {
            let lambda = events[i].0;
            while i < events.len() && events[i].0 == lambda {
                s += events[i].1;
                k += events[i].2;
                i += 1;
            }
            bps.push(lambda);
            slopes.push(s);
            consts.push(k);
        }
        AggregateCurve {
            bps,
            slopes,
            consts,
            floor,
            ceil,
        }
    }

    /// The aggregate floor `Σ p_min` (demand as λ → ∞).
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The aggregate ceiling (demand at prices below every kink; `Σ p_max`
    /// for an uncapped curve, the cap otherwise).
    pub fn ceil(&self) -> f64 {
        self.ceil
    }

    /// Exact demand at price `lambda`.
    pub fn demand(&self, lambda: f64) -> f64 {
        match self.bps.partition_point(|&b| b <= lambda) {
            0 => self.ceil,
            k => self.consts[k - 1] + self.slopes[k - 1] * lambda,
        }
    }

    /// The left limit `D(λ⁻)` — equals [`AggregateCurve::demand`] except at
    /// the jump points contributed by degenerate linear members, where it
    /// returns the value just *before* the drop. The gap
    /// `demand_left(λ) − demand(λ)` is exactly the marginal power a
    /// water-filler may allocate fractionally at price λ.
    pub fn demand_left(&self, lambda: f64) -> f64 {
        match self.bps.partition_point(|&b| b < lambda) {
            0 => self.ceil,
            k => self.consts[k - 1] + self.slopes[k - 1] * lambda,
        }
    }

    /// The curve clamped by a domain cap: `min(D(λ), cap)`. A cap at or
    /// above the ceiling is a no-op; a cap below the floor clamps to the
    /// floor (the caller validates cap feasibility separately).
    pub fn with_cap(&self, cap: f64) -> AggregateCurve {
        if cap >= self.ceil {
            return self.clone();
        }
        let cap = cap.max(self.floor);
        let lambda_c = self.price_for_budget(cap);
        // Keep the original segments from λ_c on; below λ_c the demand is
        // the constant cap, which the ceil field encodes.
        let k = self.bps.partition_point(|&b| b <= lambda_c);
        let mut bps = Vec::with_capacity(self.bps.len() - k + 1);
        let mut slopes = Vec::with_capacity(bps.capacity());
        let mut consts = Vec::with_capacity(bps.capacity());
        if k > 0 && self.consts[k - 1] + self.slopes[k - 1] * lambda_c <= cap {
            // λ_c lands inside segment k−1 (or exactly on its value): keep
            // the partial segment starting at λ_c.
            bps.push(lambda_c);
            slopes.push(self.slopes[k - 1]);
            consts.push(self.consts[k - 1]);
        }
        bps.extend_from_slice(&self.bps[k..]);
        slopes.extend_from_slice(&self.slopes[k..]);
        consts.extend_from_slice(&self.consts[k..]);
        AggregateCurve {
            bps,
            slopes,
            consts,
            floor: self.floor,
            ceil: cap,
        }
    }

    /// The smallest `λ ≥ 0` with `D(λ) ≤ budget` — the exact water-filling
    /// price. Returns 0 when the budget is slack at zero price, and the
    /// last breakpoint (everyone pinned to floor) when `budget < floor`.
    pub fn price_for_budget(&self, budget: f64) -> f64 {
        if budget >= self.demand(0.0) {
            return 0.0;
        }
        if budget < self.floor {
            return self.bps.last().copied().unwrap_or(0.0).max(0.0);
        }
        // Segment-start demands are nonincreasing; find the first segment
        // whose start value already fits the budget.
        let k = self
            .bps
            .iter()
            .enumerate()
            .map(|(i, &bp)| self.consts[i] + self.slopes[i] * bp)
            .collect::<Vec<f64>>()
            .partition_point(|&v| v > budget);
        if k == 0 {
            // The pre-curve constant region (D = ceil) sits above the
            // budget and the first segment already fits: the crossing is
            // the first breakpoint.
            return self.bps[0].max(0.0);
        }
        if k == self.bps.len() {
            // Every segment start is above the budget: the crossing is in
            // the last segment (its slope must be negative since
            // budget ≥ floor).
            let s = self.slopes[k - 1];
            let lambda = (budget - self.consts[k - 1]) / s;
            return lambda.max(self.bps[k - 1]).max(0.0);
        }
        // Crossing between segment k−1 (start value > budget) and the start
        // of segment k (≤ budget): inside segment k−1 if its linear part
        // reaches the budget before bps[k], at the jump otherwise.
        let s = self.slopes[k - 1];
        if s < 0.0 {
            let lambda = (budget - self.consts[k - 1]) / s;
            if lambda <= self.bps[k] {
                return lambda.clamp(self.bps[k - 1], self.bps[k]).max(0.0);
            }
        }
        self.bps[k].max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use crate::problem::PowerBudgetProblem;
    use dpc_models::units::Watts;
    use dpc_models::workload::ClusterBuilder;

    fn cluster(n: usize, seed: u64) -> Vec<QuadraticUtility> {
        ClusterBuilder::new(n).seed(seed).build().utilities()
    }

    fn direct_demand(utilities: &[QuadraticUtility], lambda: f64) -> f64 {
        utilities
            .iter()
            .map(|u| u.argmax_minus_price(lambda).0)
            .sum()
    }

    #[test]
    fn demand_matches_direct_argmax_sum() {
        let u = cluster(40, 7);
        let curve = AggregateCurve::from_members(u.iter().map(|x| (x, 0.0)));
        for i in 0..400 {
            let lambda = i as f64 * 5e-5;
            let direct = direct_demand(&u, lambda);
            assert!(
                (curve.demand(lambda) - direct).abs() < 1e-9 * direct.max(1.0),
                "λ={lambda}: curve {} vs direct {direct}",
                curve.demand(lambda)
            );
        }
        assert!((curve.ceil() - direct_demand(&u, 0.0)).abs() < 1e-9);
        assert!((curve.floor() - direct_demand(&u, 1e9)).abs() < 1e-9);
    }

    #[test]
    fn price_inversion_matches_the_oracle() {
        let u = cluster(64, 11);
        let curve = AggregateCurve::from_members(u.iter().map(|x| (x, 0.0)));
        for frac in [0.55, 0.7, 0.85, 0.95] {
            let budget = curve.floor() + frac * (curve.ceil() - curve.floor());
            let lambda = curve.price_for_budget(budget);
            // Exact inversion: demand at the returned price meets the
            // budget to floating-point accuracy.
            assert!(curve.demand(lambda) <= budget + 1e-6);
            let problem = PowerBudgetProblem::new(u.clone(), Watts(budget)).unwrap();
            let oracle = centralized::solve(&problem);
            assert!(
                (lambda - oracle.lambda).abs() < 1e-6 * oracle.lambda.max(1e-9),
                "curve λ {lambda} vs oracle λ {}",
                oracle.lambda
            );
        }
    }

    #[test]
    fn slack_budget_prices_at_zero_and_starved_budget_prices_at_max() {
        let u = cluster(8, 3);
        let curve = AggregateCurve::from_members(u.iter().map(|x| (x, 0.0)));
        assert_eq!(curve.price_for_budget(curve.ceil() + 10.0), 0.0);
        let lambda_max = curve.price_for_budget(curve.floor() - 5.0);
        assert!((curve.demand(lambda_max) - curve.floor()).abs() < 1e-9);
    }

    #[test]
    fn sum_equals_union_of_members() {
        let a = cluster(12, 1);
        let b = cluster(20, 2);
        let ca = AggregateCurve::from_members(a.iter().map(|x| (x, 0.0)));
        let cb = AggregateCurve::from_members(b.iter().map(|x| (x, 0.0)));
        let summed = AggregateCurve::sum(&[&ca, &cb]);
        let union: Vec<QuadraticUtility> = a.iter().chain(&b).copied().collect();
        let direct = AggregateCurve::from_members(union.iter().map(|x| (x, 0.0)));
        for i in 0..300 {
            let lambda = i as f64 * 6e-5;
            assert!(
                (summed.demand(lambda) - direct.demand(lambda)).abs() < 1e-9,
                "λ={lambda}"
            );
        }
    }

    #[test]
    fn cap_clamps_demand_pointwise() {
        let u = cluster(24, 9);
        let curve = AggregateCurve::from_members(u.iter().map(|x| (x, 0.0)));
        let cap = curve.floor() + 0.4 * (curve.ceil() - curve.floor());
        let capped = curve.with_cap(cap);
        assert!((capped.ceil() - cap).abs() < 1e-12);
        for i in 0..300 {
            let lambda = i as f64 * 6e-5;
            let want = curve.demand(lambda).min(cap);
            assert!(
                (capped.demand(lambda) - want).abs() < 1e-9,
                "λ={lambda}: {} vs {want}",
                capped.demand(lambda)
            );
        }
        // Inversion of a capped curve never prices below the cap's kink.
        assert_eq!(capped.price_for_budget(cap + 1.0), 0.0);
    }

    #[test]
    fn tenant_offset_shifts_the_member_response() {
        let u = cluster(10, 5);
        let mu = 2e-3;
        let shifted = AggregateCurve::from_members(u.iter().map(|x| (x, mu)));
        let base = AggregateCurve::from_members(u.iter().map(|x| (x, 0.0)));
        for i in 0..200 {
            let lambda = i as f64 * 5e-5;
            assert!(
                (shifted.demand(lambda) - base.demand(lambda + mu)).abs() < 1e-9,
                "λ={lambda}"
            );
        }
    }

    #[test]
    fn degenerate_linear_members_jump_cleanly() {
        let lin = QuadraticUtility::new(0.1, 0.01, 0.0, Watts(50.0), Watts(100.0)).unwrap();
        let curve = AggregateCurve::from_members([(&lin, 0.0)]);
        assert_eq!(curve.demand(0.009), 100.0);
        assert_eq!(curve.demand(0.01), 50.0); // right-continuous at the jump
                                              // A budget strictly between floor and ceil prices at the jump.
        assert!((curve.price_for_budget(75.0) - 0.01).abs() < 1e-12);
    }
}
