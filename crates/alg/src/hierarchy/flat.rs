//! The two-timescale facility of flat groups (the seed-era prototype, with
//! its feasibility bugs fixed): fast per-group DiBA rings plus a slow
//! facility-level price rebalance.

use super::spread_residue;
use crate::diba::{DibaConfig, DibaRun};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use dpc_topology::Graph;

/// A facility of independently-running groups with a shared total budget.
#[derive(Debug, Clone)]
pub struct HierarchicalRun {
    groups: Vec<DibaRun>,
    /// Member indices (into the original utility vector) per group.
    members: Vec<Vec<usize>>,
    total_budget: Watts,
    /// Fraction of the inter-group price gap closed per rebalance.
    rebalance_step: f64,
}

impl HierarchicalRun {
    /// Partitions `utilities` into `group_of[i]` groups (ids `0..g`), gives
    /// each group its aggregate idle floor plus a share of the remaining
    /// slack proportional to its headroom (`Σ p_max − Σ p_min`), and starts
    /// a DiBA ring inside every group. The headroom-proportional split
    /// guarantees every group is feasible whenever the facility total is.
    ///
    /// # Errors
    ///
    /// [`AlgError::DimensionMismatch`] on length mismatch or an empty
    /// group; [`AlgError::InfeasibleBudget`] when the total budget cannot
    /// cover the facility's aggregate idle floor.
    pub fn new(
        utilities: Vec<QuadraticUtility>,
        group_of: &[usize],
        total_budget: Watts,
        config: DibaConfig,
    ) -> Result<HierarchicalRun, AlgError> {
        if utilities.len() != group_of.len() {
            return Err(AlgError::DimensionMismatch {
                expected: utilities.len(),
                got: group_of.len(),
            });
        }
        if utilities.is_empty() {
            return Err(AlgError::EmptyProblem);
        }
        let group_count = group_of.iter().copied().max().map_or(0, |g| g + 1);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); group_count];
        for (i, &g) in group_of.iter().enumerate() {
            members[g].push(i);
        }
        if let Some(empty) = members.iter().position(Vec::is_empty) {
            return Err(AlgError::DimensionMismatch {
                expected: 1,
                got: empty,
            });
        }

        let floors: Vec<f64> = members
            .iter()
            .map(|m| m.iter().map(|&i| utilities[i].p_min().0).sum())
            .collect();
        let headrooms: Vec<f64> = members
            .iter()
            .map(|m| {
                m.iter()
                    .map(|&i| (utilities[i].p_max() - utilities[i].p_min()).0)
                    .sum()
            })
            .collect();
        let floor_sum: f64 = floors.iter().sum();
        if total_budget.0 < floor_sum {
            return Err(AlgError::InfeasibleBudget {
                budget: total_budget,
                min_required: Watts(floor_sum),
            });
        }
        let slack = total_budget.0 - floor_sum;
        let head_sum: f64 = headrooms.iter().sum();

        let mut groups = Vec::with_capacity(group_count);
        for ((m, &floor), &head) in members.iter().zip(&floors).zip(&headrooms) {
            let share = if head_sum > 0.0 {
                floor + slack * head / head_sum
            } else {
                floor + slack / group_count as f64
            };
            let group_utilities: Vec<QuadraticUtility> = m.iter().map(|&i| utilities[i]).collect();
            let problem = PowerBudgetProblem::new(group_utilities, Watts(share))?;
            groups.push(DibaRun::new(problem, Graph::ring(m.len()), config)?);
        }
        Ok(HierarchicalRun {
            groups,
            members,
            total_budget,
            rebalance_step: 0.5,
        })
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total facility budget.
    pub fn total_budget(&self) -> Watts {
        self.total_budget
    }

    /// Current group budgets.
    pub fn group_budgets(&self) -> Vec<Watts> {
        self.groups.iter().map(|g| g.problem().budget()).collect()
    }

    /// Sets the fraction of the inter-group price gap closed per rebalance
    /// (clamped into `[0.001, 4]`); the property tests sweep this to check
    /// feasibility under aggressive steps.
    pub fn set_rebalance_step(&mut self, step: f64) {
        self.rebalance_step = step.clamp(1e-3, 4.0);
    }

    /// Runs `rounds` DiBA rounds inside every group (groups are fully
    /// independent — in deployment they run in parallel).
    pub fn step_local(&mut self, rounds: usize) {
        for g in &mut self.groups {
            g.run(rounds);
        }
    }

    /// The facility-level rebalance: each group reports its demand price
    /// (mean marginal utility of its members at their current power); the
    /// facility shifts budget from below-price groups to above-price ones.
    ///
    /// The reference price is the *member-count-weighted* mean, so the raw
    /// price-gap steps sum to zero by construction instead of biasing the
    /// fixed point toward small groups; each post-step budget is clamped
    /// into the group's aggregate `[Σ p_min, Σ p_max]` box and the clamped
    /// residue is redistributed proportionally to remaining room, so the
    /// facility total is conserved exactly and every group stays feasible.
    pub fn rebalance(&mut self) {
        let prices: Vec<f64> = self.groups.iter().map(Self::demand_price).collect();
        let sizes: Vec<f64> = self.members.iter().map(|m| m.len() as f64).collect();
        let n_total: f64 = sizes.iter().sum();
        let mean_price = prices.iter().zip(&sizes).map(|(p, s)| p * s).sum::<f64>() / n_total;
        // Scale price gaps into watts with a per-member lever arm: a group's
        // shift is κ · n_g · (price_g − mean), so Σ shifts = 0 under the
        // weighted mean.
        let per_member = self.total_budget.0 / n_total;
        let gain = 0.1 * self.rebalance_step * per_member / mean_price.max(1e-12);
        let mut desired: Vec<f64> = self
            .group_budgets()
            .iter()
            .zip(&prices)
            .zip(&sizes)
            .map(|((b, &pr), &s)| b.0 + gain * s * (pr - mean_price))
            .collect();
        let floors: Vec<f64> = self
            .groups
            .iter()
            .map(|g| g.problem().min_total().0)
            .collect();
        let ceils: Vec<f64> = self
            .groups
            .iter()
            .map(|g| g.problem().max_total().0)
            .collect();
        spread_residue(&mut desired, &floors, &ceils, self.total_budget.0);
        for (g, &b) in self.groups.iter_mut().zip(&desired) {
            if (b - g.problem().budget().0).abs() > 1e-12 {
                g.set_budget(Watts(b))
                    .expect("budget was clamped into the group's feasible box");
            }
        }
    }

    fn demand_price(group: &DibaRun) -> f64 {
        let alloc = group.allocation();
        group
            .problem()
            .utilities()
            .iter()
            .zip(alloc.powers())
            .map(|(u, &p)| u.slope(p).max(0.0))
            .sum::<f64>()
            / group.problem().len() as f64
    }

    /// Total power across the facility.
    pub fn total_power(&self) -> Watts {
        self.groups.iter().map(DibaRun::total_power).sum()
    }

    /// Total utility across the facility.
    pub fn total_utility(&self) -> f64 {
        self.groups.iter().map(DibaRun::total_utility).sum()
    }

    /// Facility-wide allocation in original server order.
    pub fn allocation(&self) -> Allocation {
        let n: usize = self.members.iter().map(Vec::len).sum();
        let mut powers = vec![Watts::ZERO; n];
        for (group, m) in self.groups.iter().zip(&self.members) {
            let alloc = group.allocation();
            for (slot, &orig) in m.iter().enumerate() {
                powers[orig] = alloc.power(slot);
            }
        }
        Allocation::new(powers)
    }

    /// Alternates local rounds and rebalances until the facility is within
    /// `rel_tol` of `reference_utility` (and feasible); returns the number
    /// of (local-rounds, rebalance) super-steps used.
    pub fn run_until_within(
        &mut self,
        reference_utility: f64,
        rel_tol: f64,
        local_rounds: usize,
        max_super_steps: usize,
    ) -> Option<usize> {
        for s in 0..max_super_steps {
            let feasible = self.total_power() <= self.total_budget + Watts(1e-6);
            let gap = (reference_utility - self.total_utility()).abs()
                / reference_utility.abs().max(1e-12);
            if feasible && gap < rel_tol {
                return Some(s);
            }
            self.step_local(local_rounds);
            self.rebalance();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use dpc_models::workload::ClusterBuilder;

    fn utilities(n: usize, seed: u64) -> Vec<QuadraticUtility> {
        ClusterBuilder::new(n).seed(seed).build().utilities()
    }

    fn round_robin_groups(n: usize, g: usize) -> Vec<usize> {
        (0..n).map(|i| i % g).collect()
    }

    #[test]
    fn rejects_bad_shapes() {
        let u = utilities(6, 1);
        assert!(matches!(
            HierarchicalRun::new(u.clone(), &[0, 1], Watts(1_000.0), DibaConfig::default()),
            Err(AlgError::DimensionMismatch { .. })
        ));
        // Group 1 empty (ids 0 and 2 used).
        assert!(HierarchicalRun::new(
            u,
            &[0, 0, 2, 2, 0, 2],
            Watts(1_020.0),
            DibaConfig::default()
        )
        .is_err());
    }

    #[test]
    fn budgets_are_conserved_across_rebalances() {
        let n = 48;
        let total = Watts(170.0 * n as f64);
        let mut h = HierarchicalRun::new(
            utilities(n, 2),
            &round_robin_groups(n, 4),
            total,
            DibaConfig::default(),
        )
        .unwrap();
        for _ in 0..20 {
            h.step_local(50);
            h.rebalance();
            let sum: Watts = h.group_budgets().iter().copied().sum();
            assert!((sum - total).abs() < Watts(1e-6), "budget drifted to {sum}");
            assert!(h.total_power() <= total + Watts(1e-6));
        }
    }

    #[test]
    fn hierarchy_approaches_the_flat_optimum() {
        let n = 60;
        let total = Watts(168.0 * n as f64);
        let u = utilities(n, 3);
        let flat = PowerBudgetProblem::new(u.clone(), total).unwrap();
        let opt = flat.total_utility(&centralized::solve(&flat).allocation);

        let mut h =
            HierarchicalRun::new(u, &round_robin_groups(n, 5), total, DibaConfig::default())
                .unwrap();
        let steps = h.run_until_within(opt, 0.015, 150, 200);
        assert!(
            steps.is_some(),
            "hierarchy failed to approach the flat optimum"
        );
    }

    #[test]
    fn rebalance_moves_budget_toward_hungry_groups() {
        // Group 0: all CPU-bound (steep); group 1: all memory-bound (flat).
        use dpc_models::throughput::CurveParams;
        let steep: Vec<QuadraticUtility> = (0..10)
            .map(|_| CurveParams::for_memory_boundedness(0.05).utility(Watts(110.0), Watts(210.0)))
            .collect();
        let flat: Vec<QuadraticUtility> = (0..10)
            .map(|_| CurveParams::for_memory_boundedness(0.95).utility(Watts(110.0), Watts(210.0)))
            .collect();
        let mut all = steep;
        all.extend(flat);
        let group_of: Vec<usize> = (0..20).map(|i| i / 10).collect();
        let total = Watts(160.0 * 20.0);
        let mut h = HierarchicalRun::new(all, &group_of, total, DibaConfig::default()).unwrap();
        let before = h.group_budgets();
        for _ in 0..40 {
            h.step_local(80);
            h.rebalance();
        }
        let after = h.group_budgets();
        assert!(
            after[0] > before[0] + Watts(50.0),
            "steep group gained only {} -> {}",
            before[0],
            after[0]
        );
        assert!(after[1] < before[1]);
    }

    #[test]
    fn allocation_maps_back_to_original_order() {
        let n = 12;
        let u = utilities(n, 4);
        let mut h = HierarchicalRun::new(
            u.clone(),
            &round_robin_groups(n, 3),
            Watts(170.0 * n as f64),
            DibaConfig::default(),
        )
        .unwrap();
        h.step_local(100);
        let alloc = h.allocation();
        assert_eq!(alloc.len(), n);
        for (uu, &p) in u.iter().zip(alloc.powers()) {
            assert!(p >= uu.p_min() - Watts(1e-9) && p <= uu.p_max() + Watts(1e-9));
        }
        assert!((alloc.total() - h.total_power()).abs() < Watts(1e-9));
    }
}
