//! The budget tree: nested domains, top-down budget propagation, bottom-up
//! demand-price reporting, and cross-cutting tenant caps.
//!
//! Solving is two-phase:
//!
//! 1. **Curve phase (exact).** Each leaf's aggregate demand curve is built
//!    from its members' quadratics; internal nodes sum their children's
//!    (cap-clamped) curves. Budgets then propagate top-down: a node inverts
//!    its interior curve at its assigned budget to get its domain price λ,
//!    children are funded at their demand `D_c(λ)` plus a feasibility-safe
//!    spread of the residual, and leaves allocate members at
//!    `argmax r_i(p) − (λ + μ_tenant)·p`. Tenant multipliers μ are driven
//!    by projected dual ascent (with a final per-tenant bisection sweep) so
//!    every cross-cutting cap is respected exactly.
//! 2. **Leaf phase (optional, decentralized).** With [`LeafSolver::Diba`]
//!    each leaf re-solves its assigned budget with a DiBA ring (tenant
//!    members keep their curve-phase caps as tightened boxes), so no
//!    communication ring ever exceeds the leaf size; prices then report
//!    bottom-up as member-count-weighted means, mirroring the flat
//!    facility's rebalance telemetry.

use super::curve::AggregateCurve;
use super::spread_residue;
use super::tenant::{self, TenantCap, TenantReport};
use crate::centralized;
use crate::diba::{DibaConfig, DibaRun};
use crate::problem::{AlgError, Allocation, PowerBudgetProblem};
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;
use dpc_topology::Graph;

/// How the tree's leaf domains solve their assigned budgets.
#[derive(Debug, Clone)]
pub enum LeafSolver {
    /// Exact per-leaf water-filling at the propagated domain price.
    Oracle,
    /// A DiBA ring per leaf, run until within `rel_tol` of the leaf's own
    /// oracle utility (or `max_rounds`, then [`AlgError::DidNotConverge`]).
    Diba {
        /// DiBA engine configuration shared by every leaf ring.
        config: DibaConfig,
        /// Relative utility tolerance versus the leaf oracle.
        rel_tol: f64,
        /// Per-leaf round cap.
        max_rounds: usize,
    },
}

/// Children of a domain: either sub-domains or a concrete server set.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainChildren {
    /// Internal node over sub-domains.
    Domains(Vec<DomainSpec>),
    /// Leaf node over server indices (into the facility utility vector).
    Servers(Vec<usize>),
}

/// Declarative description of one budget domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSpec {
    /// Domain name (path segments in reports).
    pub name: String,
    /// Optional hard cap on the domain's power (`Σ p_i ≤ cap` over its
    /// subtree), independent of the budget its parent assigns.
    pub cap: Option<Watts>,
    /// Sub-domains or servers.
    pub children: DomainChildren,
}

impl DomainSpec {
    /// A leaf domain over `servers`.
    pub fn leaf(name: impl Into<String>, servers: Vec<usize>) -> DomainSpec {
        DomainSpec {
            name: name.into(),
            cap: None,
            children: DomainChildren::Servers(servers),
        }
    }

    /// An internal domain over `children`.
    pub fn internal(name: impl Into<String>, children: Vec<DomainSpec>) -> DomainSpec {
        DomainSpec {
            name: name.into(),
            cap: None,
            children: DomainChildren::Domains(children),
        }
    }

    /// Returns the spec with a hard power cap attached.
    pub fn with_cap(mut self, cap: Watts) -> DomainSpec {
        self.cap = Some(cap);
        self
    }

    /// A uniform tree over servers `0..n`: `depth` internal levels of
    /// `fanout` children each, leaves holding contiguous server ranges
    /// (`depth = 0` is a single flat leaf). Empty ranges are skipped, so
    /// `n` need not divide evenly.
    pub fn uniform(n: usize, fanout: usize, depth: usize) -> DomainSpec {
        fn build(name: String, lo: usize, hi: usize, fanout: usize, depth: usize) -> DomainSpec {
            if depth == 0 {
                return DomainSpec::leaf(name, (lo..hi).collect());
            }
            let count = hi - lo;
            let children = (0..fanout)
                .filter_map(|k| {
                    let a = lo + k * count / fanout;
                    let b = lo + (k + 1) * count / fanout;
                    (a < b).then(|| build(format!("{name}.{k}"), a, b, fanout, depth - 1))
                })
                .collect();
            DomainSpec::internal(name, children)
        }
        build("dc".to_string(), 0, n, fanout.max(1), depth)
    }
}

/// One solved domain, for telemetry and tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainReport {
    /// Slash-joined path from the root.
    pub path: String,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Servers in the subtree.
    pub servers: usize,
    /// Budget assigned by the parent (root: the facility budget).
    pub budget: Watts,
    /// The domain's configured hard cap, if any.
    pub cap: Option<Watts>,
    /// Aggregate idle floor `Σ p_min` of the subtree.
    pub floor: Watts,
    /// Aggregate peak `Σ p_max` of the subtree.
    pub ceil: Watts,
    /// Power the subtree actually drew.
    pub power: Watts,
    /// The domain's demand price (exact λ in the curve phase; reported
    /// weighted mean marginal after a DiBA leaf phase).
    pub price: f64,
    /// DiBA rounds the leaf used (0 for internal nodes and oracle leaves).
    pub rounds: u64,
}

/// Result of a [`BudgetTree::solve`].
#[derive(Debug, Clone)]
pub struct TreeSolution {
    /// Per-server power caps in facility order.
    pub allocation: Allocation,
    /// Total facility utility at the solution.
    pub total_utility: f64,
    /// Total facility power at the solution.
    pub total_power: Watts,
    /// The root domain's price.
    pub root_price: f64,
    /// Largest leaf (= largest communication ring) in servers.
    pub max_leaf_servers: usize,
    /// DiBA rounds used per leaf, in preorder (empty for oracle leaves).
    pub leaf_rounds: Vec<u64>,
    /// Solved state of every tenant cap.
    pub tenants: Vec<TenantReport>,
}

struct Node {
    children: Vec<usize>,
    /// Leaf members (empty for internal nodes).
    members: Vec<usize>,
    servers: usize,
    cap: Option<f64>,
    floor: f64,
    ceil: f64,
    depth: usize,
    path: String,
    budget: f64,
    price: f64,
    power: f64,
    rounds: u64,
}

/// A hierarchical multi-tenant budget-allocation problem over a facility of
/// servers: physical domains nest (`Σ p_i ≤ P_rack ≤ P_row ≤ P_dc`), tenant
/// caps cut across them.
pub struct BudgetTree {
    utilities: Vec<QuadraticUtility>,
    budget: Watts,
    tenants: Vec<TenantCap>,
    tenant_of: Vec<Option<usize>>,
    mu: Vec<f64>,
    /// Preorder flattening; index 0 is the root, parents precede children.
    nodes: Vec<Node>,
    leaves: Vec<usize>,
    powers: Vec<f64>,
}

const MAX_TENANT_ITERS: usize = 200;
const TENANT_SWEEPS: usize = 8;

impl BudgetTree {
    /// Builds a tree, validating that the leaves partition `0..n` exactly,
    /// every domain cap covers its subtree's idle floor, the facility
    /// budget covers the root floor, and tenant caps are disjoint and
    /// individually feasible.
    ///
    /// # Errors
    ///
    /// [`AlgError::EmptyProblem`] for an empty facility or empty leaf,
    /// [`AlgError::DimensionMismatch`] when the leaves do not partition the
    /// server set (or tenants overlap), [`AlgError::InfeasibleBudget`] when
    /// a cap or the budget is below the corresponding floor, and
    /// [`AlgError::UnknownNode`] for out-of-range members.
    pub fn new(
        utilities: Vec<QuadraticUtility>,
        spec: &DomainSpec,
        budget: Watts,
        tenants: Vec<TenantCap>,
    ) -> Result<BudgetTree, AlgError> {
        let n = utilities.len();
        if n == 0 {
            return Err(AlgError::EmptyProblem);
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut leaves: Vec<usize> = Vec::new();
        Self::flatten(spec, None, 0, &mut nodes, &mut leaves)?;

        let mut owner: Vec<Option<usize>> = vec![None; n];
        for &l in &leaves {
            if nodes[l].members.is_empty() {
                return Err(AlgError::EmptyProblem);
            }
            for &i in &nodes[l].members {
                if i >= n {
                    return Err(AlgError::UnknownNode { node: i, nodes: n });
                }
                if owner[i].is_some() {
                    return Err(AlgError::DimensionMismatch {
                        expected: 1,
                        got: i,
                    });
                }
                owner[i] = Some(l);
            }
        }
        let covered = owner.iter().filter(|o| o.is_some()).count();
        if covered != n {
            return Err(AlgError::DimensionMismatch {
                expected: n,
                got: covered,
            });
        }

        // Bottom-up floors/ceilings (children have larger indices than
        // their parents in the preorder flattening).
        for idx in (0..nodes.len()).rev() {
            if nodes[idx].children.is_empty() {
                let (mut floor, mut ceil) = (0.0, 0.0);
                for &i in &nodes[idx].members {
                    floor += utilities[i].p_min().0;
                    ceil += utilities[i].p_max().0;
                }
                nodes[idx].floor = floor;
                nodes[idx].ceil = ceil;
                nodes[idx].servers = nodes[idx].members.len();
            } else {
                let (mut floor, mut ceil, mut servers) = (0.0, 0.0, 0);
                for &c in &nodes[idx].children.clone() {
                    floor += nodes[c].floor;
                    ceil += nodes[c].ceil;
                    servers += nodes[c].servers;
                }
                nodes[idx].floor = floor;
                nodes[idx].ceil = ceil;
                nodes[idx].servers = servers;
            }
            if let Some(cap) = nodes[idx].cap {
                if cap < nodes[idx].floor {
                    return Err(AlgError::InfeasibleBudget {
                        budget: Watts(cap),
                        min_required: Watts(nodes[idx].floor),
                    });
                }
            }
        }
        if budget.0 < nodes[0].floor {
            return Err(AlgError::InfeasibleBudget {
                budget,
                min_required: Watts(nodes[0].floor),
            });
        }
        let tenant_of = tenant::validate(&tenants, &utilities)?;
        let mu = vec![0.0; tenants.len()];
        Ok(BudgetTree {
            utilities,
            budget,
            tenants,
            tenant_of,
            mu,
            nodes,
            leaves,
            powers: vec![0.0; n],
        })
    }

    fn flatten(
        spec: &DomainSpec,
        parent: Option<usize>,
        depth: usize,
        nodes: &mut Vec<Node>,
        leaves: &mut Vec<usize>,
    ) -> Result<(), AlgError> {
        let idx = nodes.len();
        let path = match parent {
            Some(p) => format!("{}/{}", nodes[p].path, spec.name),
            None => spec.name.clone(),
        };
        nodes.push(Node {
            children: Vec::new(),
            members: Vec::new(),
            servers: 0,
            cap: spec.cap.map(|c| c.0),
            floor: 0.0,
            ceil: 0.0,
            depth,
            path,
            budget: 0.0,
            price: 0.0,
            power: 0.0,
            rounds: 0,
        });
        match &spec.children {
            DomainChildren::Servers(members) => {
                nodes[idx].members = members.clone();
                leaves.push(idx);
            }
            DomainChildren::Domains(children) => {
                if children.is_empty() {
                    return Err(AlgError::EmptyProblem);
                }
                for child in children {
                    let c = nodes.len();
                    nodes[idx].children.push(c);
                    Self::flatten(child, Some(idx), depth + 1, nodes, leaves)?;
                }
            }
        }
        Ok(())
    }

    /// Number of domains (internal + leaf).
    pub fn domain_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf domains.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Servers in the largest leaf — the size of the largest communication
    /// ring any decentralized leaf phase would need.
    pub fn max_leaf_servers(&self) -> usize {
        self.leaves
            .iter()
            .map(|&l| self.nodes[l].members.len())
            .max()
            .unwrap_or(0)
    }

    /// Total facility budget.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// The facility-wide communication graph of the leaf phase: one
    /// disjoint ring per leaf domain, nothing spanning domains.
    ///
    /// # Panics
    ///
    /// Never — leaf membership was validated as a partition at
    /// construction.
    pub fn communication_graph(&self) -> Graph {
        let groups: Vec<Vec<usize>> = self
            .leaves
            .iter()
            .map(|&l| self.nodes[l].members.clone())
            .collect();
        Graph::ring_partition(self.utilities.len(), &groups)
            .expect("leaf membership is a validated partition")
    }

    /// Solves the tree. The curve phase is always run (tenant multipliers
    /// included); [`LeafSolver::Diba`] then re-solves every leaf with a
    /// bounded-size DiBA ring against its propagated budget.
    ///
    /// # Errors
    ///
    /// [`AlgError::DidNotConverge`] when tenant dual ascent cannot satisfy
    /// every cap or a DiBA leaf exhausts `max_rounds`; propagated
    /// construction errors from the leaf phase otherwise.
    pub fn solve(&mut self, leaf: &LeafSolver) -> Result<TreeSolution, AlgError> {
        self.solve_curve_phase()?;
        let mut leaf_rounds = Vec::new();
        if let LeafSolver::Diba {
            config,
            rel_tol,
            max_rounds,
        } = leaf
        {
            leaf_rounds = self.solve_leaf_phase(*config, *rel_tol, *max_rounds)?;
        }
        self.aggregate_power();
        Ok(self.solution(leaf_rounds))
    }

    /// The per-domain solved state, in preorder.
    pub fn domain_reports(&self) -> Vec<DomainReport> {
        self.nodes
            .iter()
            .map(|nd| DomainReport {
                path: nd.path.clone(),
                depth: nd.depth,
                servers: nd.servers,
                budget: Watts(nd.budget),
                cap: nd.cap.map(Watts),
                floor: Watts(nd.floor),
                ceil: Watts(nd.ceil),
                power: Watts(nd.power),
                price: nd.price,
                rounds: nd.rounds,
            })
            .collect()
    }

    /// Checks the nested-constraint chain at `tol`: every domain's subtree
    /// power within its assigned budget and its hard cap, and every
    /// internal node's child budgets summing to at most its own.
    pub fn nested_feasible(&self, tol: Watts) -> bool {
        self.nodes.iter().enumerate().all(|(idx, nd)| {
            let child_sum: f64 = nd.children.iter().map(|&c| self.nodes[c].budget).sum();
            nd.power <= nd.budget + tol.0
                && nd.cap.is_none_or(|cap| nd.power <= cap + tol.0)
                && (nd.children.is_empty() || child_sum <= self.nodes[idx].budget + tol.0)
        })
    }

    fn solution(&self, leaf_rounds: Vec<u64>) -> TreeSolution {
        let allocation = Allocation::new(self.powers.iter().map(|&p| Watts(p)).collect());
        let total_utility = self
            .utilities
            .iter()
            .zip(&self.powers)
            .map(|(u, &p)| u.value(Watts(p)))
            .sum();
        TreeSolution {
            total_utility,
            total_power: Watts(self.powers.iter().sum()),
            root_price: self.nodes[0].price,
            max_leaf_servers: self.max_leaf_servers(),
            leaf_rounds,
            tenants: self.tenant_reports(),
            allocation,
        }
    }

    fn tenant_reports(&self) -> Vec<TenantReport> {
        self.tenants
            .iter()
            .zip(&self.mu)
            .map(|(t, &mu)| {
                let usage: f64 = t.members.iter().map(|&i| self.powers[i]).sum();
                TenantReport {
                    name: t.name.clone(),
                    cap: t.cap,
                    usage: Watts(usage),
                    price: mu,
                    binding: mu > 1e-9 && usage >= t.cap.0 - 1e-3 * t.cap.0.max(1.0),
                }
            })
            .collect()
    }

    /// Builds interior and exposed curves for the current multipliers.
    /// `interior[idx]` prices the node's own budget; `exposed[idx]` adds
    /// the node's hard cap and is what its parent sums.
    fn build_curves(&self) -> (Vec<AggregateCurve>, Vec<AggregateCurve>) {
        let mut interior: Vec<Option<AggregateCurve>> =
            (0..self.nodes.len()).map(|_| None).collect();
        let mut exposed: Vec<Option<AggregateCurve>> =
            (0..self.nodes.len()).map(|_| None).collect();
        for idx in (0..self.nodes.len()).rev() {
            let nd = &self.nodes[idx];
            let inner = if nd.children.is_empty() {
                AggregateCurve::from_members(nd.members.iter().map(|&i| {
                    let mu = self.tenant_of[i].map_or(0.0, |t| self.mu[t]);
                    (&self.utilities[i], mu)
                }))
            } else {
                let children: Vec<&AggregateCurve> = nd
                    .children
                    .iter()
                    .map(|&c| exposed[c].as_ref().expect("children built first"))
                    .collect();
                AggregateCurve::sum(&children)
            };
            let outer = match nd.cap {
                Some(cap) => inner.with_cap(cap),
                None => inner.clone(),
            };
            interior[idx] = Some(inner);
            exposed[idx] = Some(outer);
        }
        (
            interior.into_iter().map(Option::unwrap).collect(),
            exposed.into_iter().map(Option::unwrap).collect(),
        )
    }

    /// Top-down budget propagation and exact leaf allocation at the current
    /// multipliers.
    fn propagate(&mut self, interior: &[AggregateCurve], exposed: &[AggregateCurve]) {
        self.nodes[0].budget = match self.nodes[0].cap {
            Some(cap) => self.budget.0.min(cap),
            None => self.budget.0,
        };
        for (idx, inner) in interior.iter().enumerate() {
            let b = self.nodes[idx].budget;
            let lambda = inner.price_for_budget(b);
            self.nodes[idx].price = lambda;
            let children = self.nodes[idx].children.clone();
            match children.len() {
                0 => {
                    // Members price in at λ + μ. A degenerate linear member
                    // (c == 0) whose effective slope sits exactly at λ is
                    // *marginal*: the water-filling optimum may place it
                    // anywhere in its box. Start it at p_min (matching the
                    // right-continuous demand the budget funded), then fill
                    // the leaf's residual budget into the marginal members
                    // in ascending order — this keeps the leaf's draw a
                    // continuous function of the multipliers, which the
                    // tenant dual ascent needs to converge.
                    let members = self.nodes[idx].members.clone();
                    let mut total = 0.0;
                    let mut marginal: Vec<usize> = Vec::new();
                    for &i in &members {
                        let mu = self.tenant_of[i].map_or(0.0, |t| self.mu[t]);
                        let u = &self.utilities[i];
                        let (_, ub, uc) = u.coefficients();
                        let p = if uc == 0.0 && ub - mu == lambda {
                            marginal.push(i);
                            u.p_min().0
                        } else {
                            u.argmax_minus_price(lambda + mu).0
                        };
                        self.powers[i] = p;
                        total += p;
                    }
                    let mut residual = b - total;
                    for &i in &marginal {
                        if residual <= 0.0 {
                            break;
                        }
                        let u = &self.utilities[i];
                        let room = u.p_max().0 - u.p_min().0;
                        let add = residual.min(room);
                        self.powers[i] += add;
                        residual -= add;
                    }
                }
                1 => {
                    // Pass-through: a chain node funds its only child with
                    // its entire budget (clamped by the child's cap), so
                    // trivial trees reproduce the flat budget bit-exactly.
                    let c = children[0];
                    self.nodes[c].budget = match self.nodes[c].cap {
                        Some(cap) => b.min(cap),
                        None => b,
                    };
                }
                _ => {
                    // Fund each child at its right-continuous demand, then
                    // spread the residual only into children whose curve
                    // jumps at exactly λ (degenerate linear members sitting
                    // at the margin): their left limit is the most a
                    // water-filler may allocate at this price. Continuous
                    // children have zero room, so generic crossings fund
                    // children at their demand exactly.
                    let mut shares: Vec<f64> = children
                        .iter()
                        .map(|&c| exposed[c].demand(lambda))
                        .collect();
                    let lo = shares.clone();
                    let hi: Vec<f64> = children
                        .iter()
                        .map(|&c| exposed[c].demand_left(lambda))
                        .collect();
                    spread_residue(&mut shares, &lo, &hi, b);
                    for (&c, &s) in children.iter().zip(&shares) {
                        self.nodes[c].budget = s;
                    }
                }
            }
        }
    }

    fn tenant_usages(&self) -> Vec<f64> {
        self.tenants
            .iter()
            .map(|t| t.members.iter().map(|&i| self.powers[i]).sum())
            .collect()
    }

    /// Runs the exact curve phase: propagation plus projected dual ascent
    /// on the tenant multipliers until every cross-cutting cap is satisfied
    /// (complementary slackness within tolerance).
    fn solve_curve_phase(&mut self) -> Result<(), AlgError> {
        if self.tenants.is_empty() {
            let (interior, exposed) = self.build_curves();
            self.propagate(&interior, &exposed);
            return Ok(());
        }
        // Damped Newton on μ: the step uses each tenant's demand
        // sensitivity Σ 1/(2|c_i|) as the (diagonal) curvature estimate.
        let curvatures: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| {
                t.members
                    .iter()
                    .map(|&i| {
                        let (_, _, c) = self.utilities[i].coefficients();
                        if c < 0.0 {
                            1.0 / (2.0 * c.abs())
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>()
                    .max(1e-12)
            })
            .collect();
        let mut iterations = 0;
        for _ in 0..MAX_TENANT_ITERS {
            iterations += 1;
            let (interior, exposed) = self.build_curves();
            self.propagate(&interior, &exposed);
            let usages = self.tenant_usages();
            let converged =
                self.tenants
                    .iter()
                    .zip(&usages)
                    .zip(&self.mu)
                    .all(|((t, &usage), &mu)| {
                        let over = usage - t.cap.0;
                        over <= 1e-7 * t.cap.0.max(1.0) && (mu <= 1e-12 || over >= -1e-4 * t.cap.0)
                    });
            if converged {
                break;
            }
            for ((t, &usage), (mu, &curv)) in self
                .tenants
                .iter()
                .zip(&usages)
                .zip(self.mu.iter_mut().zip(&curvatures))
            {
                *mu = (*mu + 0.8 * (usage - t.cap.0) / curv).max(0.0);
            }
        }
        // Exact feasibility: per-tenant bisection sweeps (raising one μ can
        // free budget that re-violates another tenant, so sweep until
        // clean). Re-propagate first: the ascent loop may have exited with
        // multipliers updated after the last propagation.
        for _ in 0..TENANT_SWEEPS {
            let (interior, exposed) = self.build_curves();
            self.propagate(&interior, &exposed);
            let usages = self.tenant_usages();
            let violated: Vec<usize> = (0..self.tenants.len())
                .filter(|&t| usages[t] > self.tenants[t].cap.0 + 1e-9 * self.tenants[t].cap.0)
                .collect();
            if violated.is_empty() {
                return Ok(());
            }
            for t in violated {
                self.bisect_tenant(t);
            }
        }
        let usages = self.tenant_usages();
        if self
            .tenants
            .iter()
            .zip(&usages)
            .any(|(t, &u)| u > t.cap.0 + 1e-6 * t.cap.0.max(1.0))
        {
            return Err(AlgError::DidNotConverge { iterations });
        }
        Ok(())
    }

    /// Bisection on tenant `t`'s multiplier alone until its usage lands at
    /// the cap from below (other multipliers fixed).
    fn bisect_tenant(&mut self, t: usize) {
        let cap = self.tenants[t].cap.0;
        let mut lo = self.mu[t];
        // A price above every member's start slope pins the tenant to its
        // floor, which is feasible by construction.
        let mut hi = self.tenants[t]
            .members
            .iter()
            .map(|&i| self.utilities[i].slope(self.utilities[i].p_min()))
            .fold(lo, f64::max)
            .max(lo + 1e-9)
            * 2.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            self.mu[t] = mid;
            let (interior, exposed) = self.build_curves();
            self.propagate(&interior, &exposed);
            let usage: f64 = self.tenants[t]
                .members
                .iter()
                .map(|&i| self.powers[i])
                .sum();
            if usage > cap {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Land on the feasible side of the bracket.
        self.mu[t] = hi;
        let (interior, exposed) = self.build_curves();
        self.propagate(&interior, &exposed);
    }

    /// Re-solves every leaf with a DiBA ring against its propagated budget.
    /// Tenant members keep their curve-phase allocation as a tightened
    /// upper box, so cross-cutting caps survive the decentralized phase.
    fn solve_leaf_phase(
        &mut self,
        config: DibaConfig,
        rel_tol: f64,
        max_rounds: usize,
    ) -> Result<Vec<u64>, AlgError> {
        let mut leaf_rounds = Vec::with_capacity(self.leaves.len());
        for &l in &self.leaves.clone() {
            let members = self.nodes[l].members.clone();
            let mut leaf_utils = Vec::with_capacity(members.len());
            for &i in &members {
                let u = self.utilities[i];
                let tightened = match self.tenant_of[i] {
                    Some(t) if self.mu[t] > 1e-9 => {
                        let cap = Watts(self.powers[i]).max(u.p_min() + Watts(1e-6));
                        let (a, b, c) = u.coefficients();
                        QuadraticUtility::new(a, b, c, u.p_min(), cap.min(u.p_max())).unwrap_or(u)
                    }
                    _ => u,
                };
                leaf_utils.push(tightened);
            }
            let problem = PowerBudgetProblem::new(leaf_utils, Watts(self.nodes[l].budget))?;
            let reference = problem.total_utility(&centralized::solve(&problem).allocation);
            let mut run = DibaRun::new(problem, Graph::ring(members.len()), config)?;
            let rounds = run.run_until_within(reference, rel_tol, max_rounds).ok_or(
                AlgError::DidNotConverge {
                    iterations: max_rounds,
                },
            )?;
            self.nodes[l].rounds = rounds as u64;
            leaf_rounds.push(rounds as u64);
            let alloc = run.allocation();
            for (slot, &i) in members.iter().enumerate() {
                self.powers[i] = alloc.power(slot).0;
            }
            // Bottom-up demand-price report: the leaf's mean marginal
            // replaces the exact curve-phase λ.
            let price: f64 = members
                .iter()
                .map(|&i| self.utilities[i].slope(Watts(self.powers[i])).max(0.0))
                .sum::<f64>()
                / members.len() as f64;
            self.nodes[l].price = price;
        }
        // Internal prices report bottom-up as server-count-weighted means,
        // mirroring the flat facility's weighted rebalance price.
        for idx in (0..self.nodes.len()).rev() {
            if !self.nodes[idx].children.is_empty() {
                let children = self.nodes[idx].children.clone();
                let weighted: f64 = children
                    .iter()
                    .map(|&c| self.nodes[c].price * self.nodes[c].servers as f64)
                    .sum();
                self.nodes[idx].price = weighted / self.nodes[idx].servers as f64;
            }
        }
        Ok(leaf_rounds)
    }

    fn aggregate_power(&mut self) {
        for idx in (0..self.nodes.len()).rev() {
            if self.nodes[idx].children.is_empty() {
                self.nodes[idx].power = self.nodes[idx]
                    .members
                    .iter()
                    .map(|&i| self.powers[i])
                    .sum();
            } else {
                self.nodes[idx].power = self.nodes[idx]
                    .children
                    .clone()
                    .iter()
                    .map(|&c| self.nodes[c].power)
                    .sum();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_models::workload::ClusterBuilder;

    fn cluster(n: usize, seed: u64) -> Vec<QuadraticUtility> {
        ClusterBuilder::new(n).seed(seed).build().utilities()
    }

    #[test]
    fn uniform_spec_partitions_contiguously() {
        let spec = DomainSpec::uniform(10, 3, 1);
        let tree = BudgetTree::new(cluster(10, 1), &spec, Watts(1800.0), vec![]).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.domain_count(), 4);
        assert!(tree.max_leaf_servers() <= 4);
    }

    #[test]
    fn construction_rejects_bad_trees() {
        let u = cluster(6, 2);
        // Duplicate server 0; server 5 missing.
        let dup = DomainSpec::internal(
            "dc",
            vec![
                DomainSpec::leaf("a", vec![0, 1, 2]),
                DomainSpec::leaf("b", vec![0, 3, 4]),
            ],
        );
        assert!(matches!(
            BudgetTree::new(u.clone(), &dup, Watts(1200.0), vec![]),
            Err(AlgError::DimensionMismatch { .. })
        ));
        // Cap below the subtree floor.
        let capped = DomainSpec::internal(
            "dc",
            vec![
                DomainSpec::leaf("a", vec![0, 1, 2]).with_cap(Watts(10.0)),
                DomainSpec::leaf("b", vec![3, 4, 5]),
            ],
        );
        assert!(matches!(
            BudgetTree::new(u.clone(), &capped, Watts(1200.0), vec![]),
            Err(AlgError::InfeasibleBudget { .. })
        ));
        // Overlapping tenants.
        let spec = DomainSpec::uniform(6, 2, 1);
        let overlapping = vec![
            TenantCap::new("t0", vec![0, 1], Watts(800.0)),
            TenantCap::new("t1", vec![1, 2], Watts(800.0)),
        ];
        assert!(BudgetTree::new(u, &spec, Watts(1200.0), overlapping).is_err());
    }

    #[test]
    fn uncapped_tree_matches_the_flat_oracle() {
        for (n, fanout, depth) in [(48, 4, 1), (60, 3, 2), (64, 2, 3)] {
            let u = cluster(n, 7);
            let budget = Watts(165.0 * n as f64);
            let flat = PowerBudgetProblem::new(u.clone(), budget).unwrap();
            let oracle = centralized::solve(&flat);
            let spec = DomainSpec::uniform(n, fanout, depth);
            let mut tree = BudgetTree::new(u, &spec, budget, vec![]).unwrap();
            let sol = tree.solve(&LeafSolver::Oracle).unwrap();
            let dev = sol.allocation.max_abs_diff(&oracle.allocation);
            assert!(
                dev < Watts(1e-5),
                "fanout {fanout} depth {depth}: max deviation {dev}"
            );
            assert!(tree.nested_feasible(Watts(1e-6)));
        }
    }

    #[test]
    fn binding_domain_cap_is_enforced_and_slack_is_reused() {
        let n = 40;
        let u = cluster(n, 3);
        let budget = Watts(180.0 * n as f64);
        // Cap the first rack well below its uncapped draw.
        let mut spec = DomainSpec::uniform(n, 4, 1);
        if let DomainChildren::Domains(children) = &mut spec.children {
            children[0].cap = Some(Watts(1400.0));
        }
        let mut tree = BudgetTree::new(u, &spec, budget, vec![]).unwrap();
        let sol = tree.solve(&LeafSolver::Oracle).unwrap();
        let reports = tree.domain_reports();
        let capped = reports.iter().find(|r| r.cap.is_some()).unwrap();
        assert!(capped.power <= Watts(1400.0) + Watts(1e-6));
        // The freed budget flows to the uncapped racks: total power still
        // tracks the facility budget (no stranded watts).
        assert!(sol.total_power > budget - Watts(1.0));
        assert!(tree.nested_feasible(Watts(1e-6)));
    }

    #[test]
    fn binding_tenant_cap_is_respected_exactly() {
        let n = 32;
        let u = cluster(n, 9);
        let budget = Watts(190.0 * n as f64);
        let spec = DomainSpec::uniform(n, 4, 1);
        // A tenant spanning all four racks, capped below its uncapped draw.
        let members: Vec<usize> = (0..n).step_by(4).collect();
        let uncapped = {
            let mut tree = BudgetTree::new(u.clone(), &spec, budget, vec![]).unwrap();
            let sol = tree.solve(&LeafSolver::Oracle).unwrap();
            members
                .iter()
                .map(|&i| sol.allocation.power(i).0)
                .sum::<f64>()
        };
        let cap = Watts(uncapped * 0.8);
        let tenants = vec![TenantCap::new("acme", members.clone(), cap)];
        let mut tree = BudgetTree::new(u, &spec, budget, tenants).unwrap();
        let sol = tree.solve(&LeafSolver::Oracle).unwrap();
        let usage: f64 = members.iter().map(|&i| sol.allocation.power(i).0).sum();
        assert!(
            usage <= cap.0 + 1e-6 * cap.0,
            "tenant usage {usage} exceeds cap {cap}"
        );
        assert!(sol.tenants[0].binding, "cap at 80% of draw must bind");
        assert!(sol.tenants[0].price > 0.0);
        assert!(tree.nested_feasible(Watts(1e-6)));
    }

    #[test]
    fn diba_leaves_reach_the_tree_optimum() {
        let n = 64;
        let u = cluster(n, 5);
        let budget = Watts(168.0 * n as f64);
        let flat = PowerBudgetProblem::new(u.clone(), budget).unwrap();
        let opt = flat.total_utility(&centralized::solve(&flat).allocation);
        let spec = DomainSpec::uniform(n, 4, 1);
        let mut tree = BudgetTree::new(u, &spec, budget, vec![]).unwrap();
        let sol = tree
            .solve(&LeafSolver::Diba {
                config: DibaConfig::default(),
                rel_tol: 0.01,
                max_rounds: 60_000,
            })
            .unwrap();
        assert_eq!(sol.leaf_rounds.len(), 4);
        let gap = (opt - sol.total_utility).abs() / opt.abs();
        assert!(gap < 0.015, "utility gap {gap}");
        assert!(sol.total_power <= budget + Watts(1e-6));
        assert_eq!(sol.max_leaf_servers, 16);
    }

    #[test]
    fn chain_domains_pass_the_budget_through_unchanged() {
        let n = 12;
        let u = cluster(n, 11);
        let budget = Watts(170.0 * n as f64);
        let spec = DomainSpec::internal(
            "dc",
            vec![DomainSpec::internal(
                "row",
                vec![DomainSpec::leaf("rack", (0..n).collect())],
            )],
        );
        let mut tree = BudgetTree::new(u, &spec, budget, vec![]).unwrap();
        tree.solve(&LeafSolver::Oracle).unwrap();
        for r in tree.domain_reports() {
            assert_eq!(r.budget, budget, "{}: budget not passed through", r.path);
        }
    }

    #[test]
    fn communication_graph_is_a_disjoint_union_of_leaf_rings() {
        let n = 24;
        let spec = DomainSpec::uniform(n, 3, 1);
        let tree = BudgetTree::new(cluster(n, 4), &spec, Watts(170.0 * 24.0), vec![]).unwrap();
        let g = tree.communication_graph();
        assert_eq!(g.len(), n);
        // A ring per 8-server leaf: every node has exactly two neighbors.
        for v in 0..n {
            assert_eq!(g.neighbors(v).len(), 2);
        }
    }
}
