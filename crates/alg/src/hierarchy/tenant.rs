//! Per-tenant power caps that cut across the physical domain tree.
//!
//! A tenant is a set of servers (possibly spanning racks and rows) with its
//! own budget `Σ_{i∈t} p_i ≤ C_t`. The tree solves these with one dual
//! multiplier μ_t per tenant: a tenant member responds to the effective
//! price `λ_domain + μ_t`, and the tree runs projected dual ascent on μ
//! until every cap is respected with complementary slackness (μ_t > 0 only
//! when the cap binds).

use crate::problem::AlgError;
use dpc_models::throughput::QuadraticUtility;
use dpc_models::units::Watts;

/// A cross-cutting tenant budget: `Σ p_i ≤ cap` over `members`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCap {
    /// Tenant name (reporting only).
    pub name: String,
    /// Server indices owned by the tenant (into the facility-wide utility
    /// vector). A server belongs to at most one tenant.
    pub members: Vec<usize>,
    /// The tenant's power budget.
    pub cap: Watts,
}

impl TenantCap {
    /// Builds a tenant cap.
    pub fn new(name: impl Into<String>, members: Vec<usize>, cap: Watts) -> TenantCap {
        TenantCap {
            name: name.into(),
            members,
            cap,
        }
    }
}

/// Solved state of one tenant cap.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// The configured cap.
    pub cap: Watts,
    /// Power the tenant's servers actually drew at the optimum.
    pub usage: Watts,
    /// The tenant's dual multiplier μ (0 when the cap is slack).
    pub price: f64,
    /// `true` when the cap binds (usage at the cap and μ > 0).
    pub binding: bool,
}

/// Validates tenant caps against the facility: member indices in range,
/// no server owned by two tenants, every cap above its members' aggregate
/// idle floor. Returns `tenant_of[i] = Some(t)` ownership.
pub(super) fn validate(
    tenants: &[TenantCap],
    utilities: &[QuadraticUtility],
) -> Result<Vec<Option<usize>>, AlgError> {
    let n = utilities.len();
    let mut tenant_of: Vec<Option<usize>> = vec![None; n];
    for (t, tenant) in tenants.iter().enumerate() {
        if tenant.members.is_empty() {
            return Err(AlgError::EmptyProblem);
        }
        let mut floor = Watts::ZERO;
        for &i in &tenant.members {
            if i >= n {
                return Err(AlgError::UnknownNode { node: i, nodes: n });
            }
            if tenant_of[i].is_some() {
                // Overlapping tenants: server i claimed twice.
                return Err(AlgError::DimensionMismatch {
                    expected: 1,
                    got: i,
                });
            }
            tenant_of[i] = Some(t);
            floor += utilities[i].p_min();
        }
        if tenant.cap < floor {
            return Err(AlgError::InfeasibleBudget {
                budget: tenant.cap,
                min_required: floor,
            });
        }
    }
    Ok(tenant_of)
}
