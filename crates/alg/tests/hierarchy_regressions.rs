//! Regression tests for the three flat-hierarchy feasibility bugs fixed by
//! the budget-tree PR. Each test fails on the pre-fix `hierarchy.rs`:
//!
//! 1. `HierarchicalRun::new` split the facility budget proportionally to
//!    member *count*, so a group with high idle floors got
//!    `InfeasibleBudget` even when the total was ample.
//! 2. `rebalance()` applied its price-gap step with a broken feasibility
//!    guard: the floor clamp used `floor × 1.001`, which *panics* (clamp
//!    with `min > max`) for a group whose box is narrower than 0.1 %, and
//!    the slack renormalization could push a group's budget above its
//!    aggregate `p_max` without conserving per-group feasibility.
//! 3. `rebalance()` computed the facility price as the *unweighted* mean of
//!    group prices, biasing the fixed point toward small groups.

use dpc_alg::centralized;
use dpc_alg::diba::DibaConfig;
use dpc_alg::hierarchy::HierarchicalRun;
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::throughput::{CurveParams, QuadraticUtility};
use dpc_models::units::Watts;

fn curves(n: usize, mb: f64, p_min: f64, p_max: f64) -> Vec<QuadraticUtility> {
    (0..n)
        .map(|_| CurveParams::for_memory_boundedness(mb).utility(Watts(p_min), Watts(p_max)))
        .collect()
}

/// Bugfix 1: a group whose members have high idle floors must receive at
/// least its aggregate floor whenever the *total* budget is ample — the
/// split is (aggregate floor) + (slack proportional to headroom), not
/// proportional to member count.
#[test]
fn ample_budget_with_heterogeneous_floors_is_feasible() {
    // Group 0: 10 servers idling at 150 W; group 1: 10 servers idling at
    // 60 W. Facility floor is 2100 W; the budget leaves 20 % slack, yet a
    // count-proportional split hands group 0 only 1260 W < its 1500 W floor.
    let mut all = curves(10, 0.3, 150.0, 210.0);
    all.extend(curves(10, 0.3, 60.0, 210.0));
    let group_of: Vec<usize> = (0..20).map(|i| i / 10).collect();
    let total = Watts(2100.0 * 1.2);

    let h = HierarchicalRun::new(all, &group_of, total, DibaConfig::default())
        .expect("ample total budget must be feasible for every group");

    let budgets = h.group_budgets();
    assert!(
        budgets[0] >= Watts(1500.0),
        "high-floor group got {} < its 1500 W floor",
        budgets[0]
    );
    assert!(budgets[1] >= Watts(600.0));
    let sum: Watts = budgets.iter().copied().sum();
    assert!(
        (sum - total).abs() < Watts(1e-6),
        "initial split does not conserve the total: {sum} vs {total}"
    );
}

/// Bugfix 2: the rebalance step must clamp every group's post-step budget
/// into its aggregate `[p_min, p_max]` box and redistribute the clamped
/// residue so the total is conserved exactly. The pre-fix guard panicked on
/// narrow-box groups (floor × 1.001 exceeding the ceiling) and could park
/// budgets above a group's ceiling.
#[test]
fn rebalance_keeps_every_group_inside_its_box_and_conserves_the_total() {
    // Group 0: 4 servers pinned in a 0.07 %-wide box (firmware-capped
    // rack); group 1: 16 flexible servers.
    let mut all = curves(4, 0.3, 150.0, 150.1);
    all.extend(curves(16, 0.3, 60.0, 210.0));
    let group_of: Vec<usize> = (0..20).map(|i| usize::from(i >= 4)).collect();
    let total = Watts(3000.0);

    let mut h = HierarchicalRun::new(all, &group_of, total, DibaConfig::default())
        .expect("total covers both groups' floors");
    let floors = [Watts(4.0 * 150.0), Watts(16.0 * 60.0)];
    let ceils = [Watts(4.0 * 150.1), Watts(16.0 * 210.0)];
    for _ in 0..30 {
        h.step_local(40);
        h.rebalance();
        let budgets = h.group_budgets();
        let sum: Watts = budgets.iter().copied().sum();
        assert!(
            (sum - total).abs() < Watts(1e-6),
            "rebalance drifted the total to {sum}"
        );
        for ((b, &lo), &hi) in budgets.iter().zip(&floors).zip(&ceils) {
            assert!(
                *b >= lo - Watts(1e-9) && *b <= hi + Watts(1e-9),
                "group budget {b} outside its feasible box [{lo}, {hi}]"
            );
        }
    }
}

/// Bugfix 3: the facility price must be the member-count-weighted mean of
/// group demand prices. With an unweighted mean, a small cold group drags
/// the facility reference price down, the big groups' steps stop summing to
/// zero, and the joint fixed point parks with an unpinned group's demand
/// price ~20 % below the flat oracle's λ* (1.3 % utility left on the
/// table). Weighted, every group whose budget is interior to its box must
/// carry the oracle's single price.
#[test]
fn weighted_facility_price_reaches_the_flat_oracle_fixed_point() {
    // 40 CPU-bound servers, 16 mixed, 4 memory-bound stragglers whose
    // demand price sits far below the facility's.
    let mut all = curves(40, 0.1, 110.0, 210.0);
    all.extend(curves(16, 0.5, 110.0, 210.0));
    all.extend(curves(4, 0.95, 110.0, 210.0));
    let group_of: Vec<usize> = (0..60)
        .map(|i| if i < 40 { 0 } else { usize::from(i >= 56) + 1 })
        .collect();
    let ranges = [(0usize, 40usize), (40, 56), (56, 60)];
    let total = Watts(150.0 * 60.0);

    let flat = PowerBudgetProblem::new(all.clone(), total).unwrap();
    let oracle = centralized::solve(&flat);
    let opt = flat.total_utility(&oracle.allocation);

    let mut h = HierarchicalRun::new(all.clone(), &group_of, total, DibaConfig::default())
        .expect("feasible facility");
    for _ in 0..150 {
        h.step_local(80);
        h.rebalance();
    }

    // Every group whose budget is strictly interior to its aggregate box
    // must share the oracle's single KKT price.
    let alloc = h.allocation();
    let budgets = h.group_budgets();
    for (g, &(lo, hi)) in ranges.iter().enumerate() {
        let floor: Watts = all[lo..hi].iter().map(|u| u.p_min()).sum();
        let ceil: Watts = all[lo..hi].iter().map(|u| u.p_max()).sum();
        let interior = budgets[g] > floor + Watts(1.0) && budgets[g] < ceil - Watts(1.0);
        if !interior {
            continue;
        }
        let price = all[lo..hi]
            .iter()
            .zip(&alloc.powers()[lo..hi])
            .map(|(u, &p)| u.slope(p).max(0.0))
            .sum::<f64>()
            / (hi - lo) as f64;
        let dev = (price - oracle.lambda).abs() / oracle.lambda;
        assert!(
            dev < 0.10,
            "group {g} demand price {price:.6} deviates {:.1}% from the oracle λ* {:.6}",
            dev * 100.0,
            oracle.lambda
        );
    }
    let gap = (opt - h.total_utility()).abs() / opt.abs();
    assert!(
        gap < 0.01,
        "joint fixed point is {:.3}% below the flat optimum (KKT violated)",
        gap * 100.0
    );
    assert!(h.total_power() <= total + Watts(1e-6));
}
