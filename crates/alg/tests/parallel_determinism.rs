//! The round engine's central guarantee: every parallel execution path is
//! *bitwise* deterministic. For any cluster, topology and round count, a
//! `DibaRun` sharded over 1, 2 or 7 worker threads — on the persistent
//! worker pool *or* the scoped-spawn engine — walks exactly the same
//! `(p, e)` trajectory as the serial engine — not merely close, identical
//! to the last mantissa bit.

use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::exec::{Backend, Threads};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn graph_for(kind: usize, n: usize) -> Graph {
    match kind {
        0 => Graph::ring(n),
        1 => Graph::star(n),
        2 => Graph::ring_with_chords(n, (n / 4).max(2)),
        _ => {
            // Smallest near-square factorization of a padded grid.
            let rows = (1..=n)
                .rev()
                .find(|r| n.is_multiple_of(*r) && *r * *r <= n)
                .unwrap_or(1);
            Graph::grid(rows, n / rows)
        }
    }
}

fn trajectory(
    n: usize,
    seed: u64,
    per_server: f64,
    kind: usize,
    rounds: usize,
    threads: usize,
    backend: Backend,
) -> Vec<(f64, f64)> {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem =
        PowerBudgetProblem::new(cluster.utilities(), Watts(per_server * n as f64)).unwrap();
    let config = DibaConfig {
        threads: Threads::Fixed(threads),
        backend,
        ..DibaConfig::default()
    };
    let mut run = DibaRun::new(problem, graph_for(kind, n), config).unwrap();
    run.run(rounds);
    run.node_states()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled and scoped execution with 1, 2 and 7 workers reproduce the
    /// serial trajectory bit for bit, over random clusters, budgets,
    /// topologies and round counts.
    #[test]
    fn parallel_rounds_match_serial_bitwise(
        n in 3usize..90,
        seed in 0u64..1_000,
        per_server in 160.0f64..200.0,
        kind in 0usize..4,
        rounds in 1usize..50,
    ) {
        let serial = trajectory(n, seed, per_server, kind, rounds, 1, Backend::Pooled);
        for backend in [Backend::Pooled, Backend::Scoped] {
            for threads in [1usize, 2, 7] {
                let parallel =
                    trajectory(n, seed, per_server, kind, rounds, threads, backend);
                prop_assert_eq!(serial.len(), parallel.len());
                for (i, (&(ps, es), &(pp, ep))) in
                    serial.iter().zip(&parallel).enumerate()
                {
                    prop_assert_eq!(
                        ps.to_bits(), pp.to_bits(),
                        "p[{}] diverged with {} {:?} workers: {} vs {}",
                        i, threads, backend, ps, pp
                    );
                    prop_assert_eq!(
                        es.to_bits(), ep.to_bits(),
                        "e[{}] diverged with {} {:?} workers: {} vs {}",
                        i, threads, backend, es, ep
                    );
                }
            }
        }
    }

    /// Changing the worker count mid-run (as the simulator may) also
    /// leaves the trajectory untouched — the pool is rebuilt, the FP
    /// order is not.
    #[test]
    fn rethreading_mid_run_is_invisible(
        n in 4usize..60,
        seed in 0u64..1_000,
        rounds in 2usize..40,
    ) {
        let serial = trajectory(n, seed, 180.0, 0, rounds, 1, Backend::Pooled);

        let cluster = ClusterBuilder::new(n).seed(seed).build();
        let problem =
            PowerBudgetProblem::new(cluster.utilities(), Watts(180.0 * n as f64)).unwrap();
        let config = DibaConfig {
            threads: Threads::Fixed(3),
            ..DibaConfig::default()
        };
        let mut run = DibaRun::new(problem, Graph::ring(n), config).unwrap();
        let half = rounds / 2;
        run.run(half);
        run.set_threads(Threads::Fixed(5));
        run.run(rounds - half);

        for (&(ps, es), (pp, ep)) in serial.iter().zip(run.node_states()) {
            prop_assert_eq!(ps.to_bits(), pp.to_bits());
            prop_assert_eq!(es.to_bits(), ep.to_bits());
        }
    }
}
