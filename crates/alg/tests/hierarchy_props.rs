//! Equivalence and safety properties of the hierarchical budget tree and
//! the flat two-timescale facility.
//!
//! The bitwise tests pin the trivial-tree contract: a chain of domains
//! around a single leaf must reproduce the flat DiBA run exactly — same
//! budget, same ring, same engine — under both the serial and the pooled
//! thread policy. The property tests then cover what a fixed example
//! cannot: tenant caps binding at arbitrary fractions of the uncapped
//! draw, and the flat facility's rebalance staying conservative and
//! feasible for any legal `rebalance_step`.

use dpc_alg::centralized;
use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::exec::Threads;
use dpc_alg::hierarchy::{BudgetTree, DomainSpec, HierarchicalRun, LeafSolver, TenantCap};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn cluster(n: usize, seed: u64) -> Vec<dpc_models::QuadraticUtility> {
    ClusterBuilder::new(n).seed(seed).build().utilities()
}

/// A dc → row → rack chain holding every server in the one leaf.
fn trivial_tree(n: usize) -> DomainSpec {
    DomainSpec::internal(
        "dc",
        vec![DomainSpec::internal(
            "row",
            vec![DomainSpec::leaf("rack", (0..n).collect())],
        )],
    )
}

/// Runs the trivial tree and the flat DiBA side by side and asserts the
/// allocations are bitwise identical.
fn assert_trivial_tree_matches_flat(threads: Threads) {
    let n = 40;
    let u = cluster(n, 13);
    let budget = Watts(168.0 * n as f64);
    let config = DibaConfig {
        threads,
        ..DibaConfig::default()
    };
    let rel_tol = 0.01;
    let max_rounds = 60_000;

    let problem = PowerBudgetProblem::new(u.clone(), budget).unwrap();
    let reference = problem.total_utility(&centralized::solve(&problem).allocation);
    let mut flat = DibaRun::new(problem, Graph::ring(n), config).unwrap();
    flat.run_until_within(reference, rel_tol, max_rounds)
        .expect("flat run converges");
    let flat_alloc = flat.allocation();

    let mut tree = BudgetTree::new(u, &trivial_tree(n), budget, vec![]).unwrap();
    let sol = tree
        .solve(&LeafSolver::Diba {
            config,
            rel_tol,
            max_rounds,
        })
        .unwrap();

    for i in 0..n {
        assert_eq!(
            sol.allocation.power(i).0.to_bits(),
            flat_alloc.power(i).0.to_bits(),
            "server {i} diverged under {threads:?}"
        );
    }
}

#[test]
fn trivial_tree_is_bitwise_the_flat_diba_run_serial() {
    assert_trivial_tree_matches_flat(Threads::Fixed(1));
}

#[test]
fn trivial_tree_is_bitwise_the_flat_diba_run_pooled() {
    assert_trivial_tree_matches_flat(Threads::Auto);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A tenant capped anywhere below its uncapped draw ends up exactly at
    /// (or under) the cap, with the nested chain and the facility budget
    /// still respected.
    #[test]
    fn binding_tenant_caps_are_always_respected(
        seed in 0u64..64,
        frac in 0.55f64..0.95,
        stride in 3usize..6,
    ) {
        let n = 36;
        let u = cluster(n, seed);
        let budget = Watts(185.0 * n as f64);
        let spec = DomainSpec::uniform(n, 3, 1);
        let members: Vec<usize> = (0..n).step_by(stride).collect();

        let uncapped = {
            let mut tree = BudgetTree::new(u.clone(), &spec, budget, vec![]).unwrap();
            let sol = tree.solve(&LeafSolver::Oracle).unwrap();
            members.iter().map(|&i| sol.allocation.power(i).0).sum::<f64>()
        };
        let floor: f64 = members.iter().map(|&i| u[i].p_min().0).sum();
        let cap = (frac * uncapped).max(floor * (1.0 + 1e-6));
        prop_assume!(cap < uncapped * 0.999);

        let tenants = vec![TenantCap::new("t", members.clone(), Watts(cap))];
        let mut tree = BudgetTree::new(u, &spec, budget, tenants).unwrap();
        let sol = tree.solve(&LeafSolver::Oracle).unwrap();

        let usage: f64 = members.iter().map(|&i| sol.allocation.power(i).0).sum();
        prop_assert!(
            usage <= cap * (1.0 + 1e-6),
            "usage {usage} exceeds cap {cap}"
        );
        prop_assert!(sol.tenants[0].price > 0.0, "cap below draw must price in");
        prop_assert!(sol.total_power <= budget + Watts(1e-6));
        prop_assert!(tree.nested_feasible(Watts(1e-6)));
    }

    /// For any legal `rebalance_step`, the flat facility's rebalance
    /// conserves the total budget exactly and keeps every group's budget
    /// inside its aggregate `[Σ p_min, Σ p_max]` box.
    #[test]
    fn rebalance_conserves_and_stays_feasible_for_any_step(
        seed in 0u64..64,
        step in 0.01f64..4.0,
        groups in 2usize..5,
        per_server in 140.0f64..200.0,
    ) {
        let n = 24;
        let u = cluster(n, seed);
        let group_of: Vec<usize> = (0..n).map(|i| i % groups).collect();
        let total = Watts(per_server * n as f64);
        let floor: f64 = u.iter().map(|q| q.p_min().0).sum();
        prop_assume!(total.0 >= floor);

        let floors: Vec<f64> = (0..groups)
            .map(|g| {
                group_of
                    .iter()
                    .zip(&u)
                    .filter(|(&og, _)| og == g)
                    .map(|(_, q)| q.p_min().0)
                    .sum()
            })
            .collect();
        let ceils: Vec<f64> = (0..groups)
            .map(|g| {
                group_of
                    .iter()
                    .zip(&u)
                    .filter(|(&og, _)| og == g)
                    .map(|(_, q)| q.p_max().0)
                    .sum()
            })
            .collect();

        let mut run = HierarchicalRun::new(u, &group_of, total, DibaConfig::default()).unwrap();
        run.set_rebalance_step(step);
        for _ in 0..12 {
            run.step_local(25);
            run.rebalance();
            let budgets = run.group_budgets();
            let sum: f64 = budgets.iter().map(|b| b.0).sum();
            prop_assert!(
                (sum - total.0).abs() <= 1e-6 * total.0,
                "budget not conserved: {sum} vs {total}"
            );
            for ((b, &lo), &hi) in budgets.iter().zip(&floors).zip(&ceils) {
                prop_assert!(
                    b.0 >= lo - 1e-9 && b.0 <= hi + 1e-9,
                    "group budget {b} outside [{lo}, {hi}]"
                );
            }
        }
    }
}
