//! Property tests of the per-node DiBA action — the function a deployed
//! agent runs every round. Safety must hold for *any* local state, because
//! a node cannot rely on its neighbors' behaviour.

use dpc_alg::diba::{node_action, NodeParams};
use dpc_models::throughput::CurveParams;
use dpc_models::units::Watts;
use proptest::prelude::*;

fn params() -> NodeParams {
    NodeParams {
        eta: 2e-3,
        margin: 2e-3,
        step_power: 0.7,
        step_transfer: 1.2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any local state — including residuals *above* the margin after a
    /// budget cut — the action keeps power in the box, sends only
    /// non-positive transfers, and never pushes the own residual above
    /// −margin from below.
    #[test]
    fn action_is_always_safe(
        mb in 0.0f64..=1.0,
        p_rel in 0.0f64..=1.0,
        e in -50.0f64..50.0,
        neighbor_e in proptest::collection::vec(-50.0f64..50.0, 0..5),
    ) {
        let u = CurveParams::for_memory_boundedness(mb)
            .utility(Watts(110.0), Watts(210.0));
        let p = 110.0 + 100.0 * p_rel;
        let prm = params();
        let action = node_action(&u, p, e, &neighbor_e, &prm);

        // Box safety.
        let p_next = p + action.dp;
        prop_assert!(p_next >= u.p_min().0 - 1e-9);
        prop_assert!(p_next <= u.p_max().0 + 1e-9);

        // One-directional slack flow.
        for &t in &action.transfers {
            prop_assert!(t <= 0.0);
        }
        prop_assert_eq!(action.transfers.len(), neighbor_e.len());

        // Own-action residual safety: from a feasible state the node never
        // leaves the barrier's interior; from an infeasible one it moves
        // toward it (or is box-pinned).
        let e_next = e + action.own_residual_delta();
        if e <= -prm.margin {
            prop_assert!(e_next <= -prm.margin + 1e-9, "left interior: {e} -> {e_next}");
        } else {
            let box_pinned = (p - u.p_min().0).abs() < 1e-9;
            prop_assert!(e_next <= e + 1e-9 || box_pinned, "violation grew: {e} -> {e_next}");
        }
    }

    /// Transfers only flow toward neighbors with less slack.
    #[test]
    fn transfers_respect_the_gradient(
        e in -20.0f64..-0.1,
        diffs in proptest::collection::vec(-5.0f64..5.0, 1..4),
    ) {
        let u = CurveParams::for_memory_boundedness(0.5)
            .utility(Watts(110.0), Watts(210.0));
        let neighbor_e: Vec<f64> = diffs.iter().map(|d| e + d).collect();
        let action = node_action(&u, 150.0, e, &neighbor_e, &params());
        for (t, d) in action.transfers.iter().zip(&diffs) {
            if *d < 0.0 {
                // Neighbor has MORE slack (more negative): no donation.
                prop_assert_eq!(*t, 0.0);
            } else {
                prop_assert!(*t <= 0.0);
            }
        }
    }

    /// With no neighbors the node still respects the barrier on its own.
    #[test]
    fn isolated_node_is_self_capping(e0 in -30.0f64..30.0) {
        let u = CurveParams::for_memory_boundedness(0.3)
            .utility(Watts(110.0), Watts(210.0));
        let prm = params();
        let mut p = 180.0;
        let mut e = e0;
        for _ in 0..2_000 {
            let a = node_action(&u, p, e, &[], &prm);
            p += a.dp;
            e += a.own_residual_delta();
        }
        // Settles strictly inside the barrier (or pinned at the box floor
        // when the initial violation exceeds the sheddable power).
        let box_pinned = (p - u.p_min().0).abs() < 1e-6;
        prop_assert!(e <= -prm.margin + 1e-9 || box_pinned, "e = {e}, p = {p}");
    }
}
