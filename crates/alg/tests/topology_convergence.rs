//! Topology-coverage convergence gate for the new graph families.
//!
//! DiBA's convergence argument needs only a connected gossip graph, but
//! until now the test surface exercised rings and chord rings exclusively.
//! This suite pins the oracle-equivalence contract on the scale-out
//! topologies — torus, hypercube, random-regular — that the reactor
//! runtime runs at 10k nodes.
//!
//! Two things are gated. First, the paper's criterion: the run reaches
//! 99 % of the centralized optimum's utility. Second, the water-filling
//! shape: the log-barrier deliberately parks ≈0.4 % of the budget as
//! slack at equilibrium (see `DibaConfig::eta`), so the converged
//! allocation is compared per-node — within `equiv_eps_watts` — against
//! the centralized water-filling oracle *at the budget the run actually
//! allocated*. That is the exact statement "gossip equalizes marginal
//! utilities across the whole graph": any residual tilt between far-apart
//! regions of the topology shows up as a per-node gap here.

use dpc_alg::centralized;
use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One of the three scale-out families, parameterized small enough for a
/// debug-profile test run.
fn scale_out_graph(family: usize, shape: usize, seed: u64) -> Graph {
    match family {
        0 => {
            let rows = 3 + shape % 3; // 3..=5
            let cols = 4 + shape % 4; // 4..=7
            Graph::torus(rows, cols).expect("torus builds")
        }
        1 => Graph::hypercube(3 + (shape % 3) as u32), // 8..=32 nodes
        _ => {
            let n = 2 * (6 + shape % 9); // even, 12..=28
            let mut rng = StdRng::seed_from_u64(seed);
            Graph::random_regular(n, 4, &mut rng, 200).expect("regular sample")
        }
    }
}

fn worst_gap(a: &[Watts], b: &[Watts]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.0 - y.0).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn diba_water_fills_on_scale_out_topologies(
        family in 0usize..3,
        shape in 0usize..16,
        seed in 0u64..1_000,
    ) {
        let graph = scale_out_graph(family, shape, seed.wrapping_mul(31).wrapping_add(7));
        let n = graph.len();
        let cluster = ClusterBuilder::new(n).seed(seed).build();
        let budget = Watts(170.0 * n as f64);
        let problem = PowerBudgetProblem::new(cluster.utilities(), budget).unwrap();
        let optimal = problem.total_utility(&centralized::solve(&problem).allocation);

        let mut run = DibaRun::new(problem.clone(), graph, DibaConfig::default()).unwrap();

        // The paper's convergence criterion against the true oracle.
        prop_assert!(
            run.run_until_within(optimal, 0.01, 20_000).is_some(),
            "family {family} shape {shape} seed {seed} (n = {n}): \
             never reached 99 % of the oracle's utility"
        );

        // The water-filling shape at the achieved budget, per node. The
        // observed closing rounds are 3k–9k across all three families
        // (the plain ring needs 17k–30k — the spectral-gap story the
        // scale-out topologies exist to fix), so 12k is headroom, not
        // tuning.
        let eps = DibaConfig::default().equiv_eps_watts;
        let mut rounds = 0usize;
        let mut gap = f64::INFINITY;
        while rounds < 12_000 {
            run.run(500);
            rounds += 500;
            let achieved = run.total_power();
            let at_achieved =
                PowerBudgetProblem::new(cluster.utilities(), achieved).unwrap();
            let oracle = centralized::solve(&at_achieved).allocation;
            gap = worst_gap(run.allocation().powers(), oracle.powers());
            if gap <= eps {
                break;
            }
        }
        prop_assert!(
            gap <= eps,
            "family {family} shape {shape} seed {seed} (n = {n}): allocation is \
             {gap} W per node away from water-filling at its own budget \
             (budget {eps} W)"
        );
        prop_assert!(
            run.total_power() <= budget + Watts(1e-6),
            "allocation exceeds the cluster budget"
        );
        prop_assert!(
            run.invariant_drift() < 1e-6,
            "residual invariant drifted by {}",
            run.invariant_drift()
        );
    }
}
