//! The telemetry layer's core contract: **recording is inert**.
//!
//! Attaching the round recorder must not perturb the solver by a single
//! bit — not in the serial engine, not in the parallel engine at any
//! worker count, and not in the asynchronous engine under live faults.
//! The comparisons below are exact (`==` on `f64` slices), because the
//! recorder only *reads* sealed per-round state and never touches the
//! fault RNG or the message queue.
//!
//! A second invariant ties the recorded ledger to the engine's own: every
//! `RoundRecord` captured under faults must internally conserve residual
//! mass (`conservation_drift() ≈ 0`), so the escrow/stranded columns in a
//! trace can be trusted as a live view of the recovery ledger.

use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::diba_async::{AsyncConfig, AsyncDibaRun};
use dpc_alg::exec::Threads;
use dpc_alg::faults::{FaultPlan, LinkFaults, NodeFaultKind};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_alg::telemetry::TelemetryConfig;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn sync_run(n: usize, seed: u64, threads: Threads, telemetry: TelemetryConfig) -> DibaRun {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(171.0 * n as f64)).unwrap();
    let graph = Graph::ring_with_chords(n, 2);
    let config = DibaConfig {
        threads,
        telemetry,
        ..DibaConfig::default()
    };
    DibaRun::new(problem, graph, config).unwrap()
}

fn faulted_run(n: usize, seed: u64, drop: f64, telemetry: TelemetryConfig) -> AsyncDibaRun {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(170.0 * n as f64)).unwrap();
    let graph = Graph::ring_with_chords(n, 2);
    let net = AsyncConfig {
        seed,
        ..AsyncConfig::default()
    };
    let link = LinkFaults {
        drop,
        duplicate: drop / 2.0,
        reorder: drop,
        ..LinkFaults::none()
    };
    let victim = 1 + (seed as usize % (n - 1));
    let plan = FaultPlan::with_link(seed, link)
        .and(60, victim, NodeFaultKind::Crash)
        .and(160, victim, NodeFaultKind::Restart);
    let config = DibaConfig {
        telemetry,
        ..DibaConfig::default()
    };
    AsyncDibaRun::with_faults(problem, graph, config, net, plan).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial engine: telemetry on vs. off walks the identical trajectory.
    #[test]
    fn serial_trajectory_is_unchanged_by_telemetry(
        seed in 0u64..1_000,
        n in 8usize..48,
        rounds in 20usize..120,
    ) {
        let mut silent = sync_run(n, seed, Threads::Fixed(1), TelemetryConfig::off());
        let mut watched = sync_run(n, seed, Threads::Fixed(1), TelemetryConfig::with_capacity(rounds));
        silent.run(rounds);
        watched.run(rounds);
        prop_assert_eq!(silent.residuals(), watched.residuals());
        prop_assert_eq!(silent.allocation(), watched.allocation());
        prop_assert_eq!(silent.last_max_step(), watched.last_max_step());
        prop_assert_eq!(watched.telemetry().unwrap().rounds_recorded(), rounds as u64);
    }

    /// Parallel engine: telemetry on vs. off is bitwise identical at every
    /// worker count, and the *records* are identical across worker counts
    /// (worker 0 aggregates with the thread-count-invariant chunked sums).
    #[test]
    fn parallel_trajectory_and_records_are_worker_count_invariant(
        seed in 0u64..1_000,
        n in 16usize..64,
        rounds in 20usize..80,
    ) {
        let telemetry = TelemetryConfig::with_capacity(rounds);
        let mut silent2 = sync_run(n, seed, Threads::Fixed(2), TelemetryConfig::off());
        let mut watched2 = sync_run(n, seed, Threads::Fixed(2), telemetry);
        let mut watched7 = sync_run(n, seed, Threads::Fixed(7), telemetry);
        silent2.run(rounds);
        watched2.run(rounds);
        watched7.run(rounds);
        prop_assert_eq!(silent2.residuals(), watched2.residuals());
        prop_assert_eq!(silent2.allocation(), watched2.allocation());
        prop_assert_eq!(watched2.residuals(), watched7.residuals());
        // Only the execution-environment fields (worker count, wall-clock
        // shard timings) may differ between engine widths; every recorded
        // solver quantity must be bitwise identical. With timings off those
        // fields are excluded from the rendered trace, so the JSONL is
        // byte-identical too.
        let mask = |r: &dpc_alg::telemetry::RoundRecord| {
            let mut m = *r;
            m.workers = 0;
            m.shard_nanos = [0; dpc_alg::telemetry::MAX_TIMED_SHARDS];
            m
        };
        let r2: Vec<_> = watched2.telemetry().unwrap().rounds().map(mask).collect();
        let r7: Vec<_> = watched7.telemetry().unwrap().rounds().map(mask).collect();
        prop_assert_eq!(r2, r7, "records must not depend on the worker count");
        prop_assert_eq!(
            watched2.telemetry().unwrap().to_jsonl(),
            watched7.telemetry().unwrap().to_jsonl(),
            "the rendered trace must not depend on the worker count"
        );
    }

    /// Asynchronous engine under message faults and a crash/restart:
    /// telemetry on vs. off is bitwise identical, state and queue included.
    #[test]
    fn faulted_async_trajectory_is_unchanged_by_telemetry(
        seed in 0u64..1_000,
        n in 8usize..32,
        drop in 0.0f64..0.3,
    ) {
        let mut silent = faulted_run(n, seed, drop, TelemetryConfig::off());
        let mut watched = faulted_run(n, seed, drop, TelemetryConfig::on());
        for round in 0..260 {
            silent.step();
            watched.step();
            prop_assert_eq!(
                silent.residuals(), watched.residuals(),
                "residuals diverged at round {}", round
            );
        }
        prop_assert_eq!(silent.allocation(), watched.allocation());
        prop_assert_eq!(silent.in_flight(), watched.in_flight());
        prop_assert_eq!(silent.escrow_total(), watched.escrow_total());
        prop_assert_eq!(silent.stranded(), watched.stranded());
        prop_assert_eq!(silent.conservation_drift(), watched.conservation_drift());
        prop_assert_eq!(
            watched.telemetry().unwrap().config().capacity,
            TelemetryConfig::DEFAULT_CAPACITY
        );
    }

    /// Every record captured under faults conserves residual mass on its
    /// own: `Σe + in-flight + escrow + stranded − (Σp − P)` ≈ 0, so the
    /// trace's escrow/stranded columns track the recovery ledger exactly.
    #[test]
    fn recorded_ledger_conserves_mass_under_faults(
        seed in 0u64..1_000,
        n in 8usize..32,
        drop in 0.0f64..0.3,
    ) {
        let mut run = faulted_run(n, seed, drop, TelemetryConfig::on());
        run.run(260);
        let t = run.telemetry().unwrap();
        prop_assert_eq!(t.rounds_recorded(), 260);
        prop_assert!(t.events_recorded() >= 2, "crash + restart must be recorded");
        for r in t.rounds() {
            prop_assert!(
                r.conservation_drift() < 1e-6,
                "round {} drifted by {} W (escrow {} W, stranded {} W)",
                r.round, r.conservation_drift(), r.escrow_total, r.stranded
            );
        }
        let last = t.latest().unwrap();
        prop_assert_eq!(last.escrow_total, run.escrow_total());
        prop_assert_eq!(last.stranded, run.stranded());
    }
}
