//! The two-tier numerical contract, pinned. `Precision::Reference` is the
//! bitwise-reproducible trajectory; `Precision::Fast` trades byte equality
//! for throughput and is held to a *numeric* equivalence gate instead:
//! the final allocation must land within `equiv_eps_watts` of the
//! reference per node, the 99 %-of-optimal convergence round must agree
//! within `equiv_rounds`, and the residual invariant `Σe = Σp − P` must
//! hold to the same drift budget. Within the fast tier itself the usual
//! determinism laws still apply — worker count and `step_many` batching
//! must be bitwise invisible — which this suite also pins.

use dpc_alg::centralized;
use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::exec::{Precision, Threads};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn graph_for(n: usize, topology: usize) -> Graph {
    match topology {
        0 => Graph::ring(n),
        1 => Graph::ring_with_chords(n, 2),
        _ => Graph::ring_with_chords(n, (n / 4).max(2)),
    }
}

fn run_for(
    n: usize,
    seed: u64,
    topology: usize,
    threads: Threads,
    precision: Precision,
) -> DibaRun {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(171.0 * n as f64)).unwrap();
    let config = DibaConfig {
        threads,
        precision,
        ..DibaConfig::default()
    };
    DibaRun::new(problem, graph_for(n, topology), config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After the same number of rounds on the same problem, the fast tier's
    /// allocation sits within the `equiv_eps_watts` budget of the reference
    /// per node, stays feasible, and conserves the residual invariant —
    /// across random problems, topologies, and worker counts.
    #[test]
    fn fast_allocation_stays_within_the_equivalence_budget(
        seed in 0u64..1_000,
        n in 8usize..48,
        topology in 0usize..3,
        rounds in 100usize..400,
        threads in (0usize..3).prop_map(|i| [1usize, 2, 7][i]),
    ) {
        let eps = DibaConfig::default().equiv_eps_watts;
        let mut reference = run_for(n, seed, topology, Threads::Fixed(threads), Precision::Reference);
        let mut fast = run_for(n, seed, topology, Threads::Fixed(threads), Precision::Fast);
        reference.run(rounds);
        fast.run(rounds);

        let budget = Watts(171.0 * n as f64);
        prop_assert!(fast.total_power() <= budget + Watts(1e-6));
        prop_assert!(fast.invariant_drift() < 1e-6, "drift {}", fast.invariant_drift());

        let worst = reference
            .allocation()
            .powers()
            .iter()
            .zip(fast.allocation().powers())
            .map(|(r, f)| (r.0 - f.0).abs())
            .fold(0.0, f64::max);
        prop_assert!(
            worst <= eps,
            "max per-node deviation {worst} W exceeds the {eps} W budget \
             (n = {n}, topology = {topology}, {threads} threads)"
        );
    }

    /// Both tiers reach the paper's 99 %-of-optimal criterion, and the
    /// round at which they do differs by at most `equiv_rounds`.
    #[test]
    fn fast_convergence_round_tracks_the_reference(
        seed in 0u64..1_000,
        n in 8usize..40,
        topology in 0usize..3,
    ) {
        let k = DibaConfig::default().equiv_rounds;
        let mut reference = run_for(n, seed, topology, Threads::Fixed(1), Precision::Reference);
        let mut fast = run_for(n, seed, topology, Threads::Fixed(1), Precision::Fast);
        let optimal = reference
            .problem()
            .total_utility(&centralized::solve(reference.problem()).allocation);

        let r_ref = reference.run_until_within(optimal, 0.01, 20_000);
        let r_fast = fast.run_until_within(optimal, 0.01, 20_000);
        prop_assert!(r_ref.is_some(), "reference never converged");
        prop_assert!(r_fast.is_some(), "fast tier never converged");
        let (r_ref, r_fast) = (r_ref.unwrap(), r_fast.unwrap());
        prop_assert!(
            r_ref.abs_diff(r_fast) <= k,
            "convergence rounds diverged: reference {r_ref}, fast {r_fast} (±{k} allowed)"
        );
    }

    /// Inside the fast tier the determinism laws are unchanged: the
    /// trajectory is bitwise invariant to the worker count and to
    /// `step_many` batching, and batching preserves `Σe = Σp − P`.
    #[test]
    fn fast_tier_is_worker_and_batching_invariant(
        seed in 0u64..1_000,
        n in 8usize..48,
        topology in 0usize..3,
        k in 1usize..60,
    ) {
        let mut serial = run_for(n, seed, topology, Threads::Fixed(1), Precision::Fast);
        let mut two = run_for(n, seed, topology, Threads::Fixed(2), Precision::Fast);
        let mut seven = run_for(n, seed, topology, Threads::Fixed(7), Precision::Fast);
        let mut batched = run_for(n, seed, topology, Threads::Fixed(2), Precision::Fast);

        for _ in 0..k {
            serial.step();
            two.step();
            seven.step();
        }
        batched.step_many(k);

        prop_assert_eq!(serial.allocation(), two.allocation());
        prop_assert_eq!(serial.allocation(), seven.allocation());
        prop_assert_eq!(two.allocation(), batched.allocation());
        prop_assert_eq!(two.residuals(), batched.residuals());
        prop_assert_eq!(two.node_states(), batched.node_states());
        prop_assert!(batched.invariant_drift() < 1e-6);
    }
}
