//! Multi-round batching must be invisible: `step_many(k)` is one engine
//! dispatch for `k` rounds, and this suite pins it to `k` single `step()`
//! calls — same final allocation, same residuals, same telemetry
//! `RoundRecord` stream, bit for bit. On the serial engine, on the
//! persistent worker pool, and on the asynchronous engine with and
//! without fault injection.

use dpc_alg::diba::{DibaConfig, DibaRun};
use dpc_alg::diba_async::{AsyncConfig, AsyncDibaRun};
use dpc_alg::exec::Threads;
use dpc_alg::faults::{FaultPlan, LinkFaults, NodeFaultKind};
use dpc_alg::problem::PowerBudgetProblem;
use dpc_alg::telemetry::{RoundRecord, TelemetryConfig, MAX_TIMED_SHARDS};
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn sync_run(n: usize, seed: u64, threads: Threads, capacity: usize) -> DibaRun {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(171.0 * n as f64)).unwrap();
    let config = DibaConfig {
        threads,
        telemetry: TelemetryConfig::with_capacity(capacity),
        ..DibaConfig::default()
    };
    DibaRun::new(problem, Graph::ring_with_chords(n, 2), config).unwrap()
}

fn async_run(n: usize, seed: u64, drop: f64, capacity: usize) -> AsyncDibaRun {
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(170.0 * n as f64)).unwrap();
    let graph = Graph::ring_with_chords(n, 2);
    let config = DibaConfig {
        telemetry: TelemetryConfig::with_capacity(capacity),
        ..DibaConfig::default()
    };
    let net = AsyncConfig {
        seed,
        ..AsyncConfig::default()
    };
    let plan = if drop > 0.0 {
        let link = LinkFaults {
            drop,
            duplicate: drop / 2.0,
            reorder: drop,
            ..LinkFaults::none()
        };
        let victim = 1 + (seed as usize % (n - 1));
        FaultPlan::with_link(seed, link)
            .and(20, victim, NodeFaultKind::Crash)
            .and(60, victim, NodeFaultKind::Restart)
    } else {
        FaultPlan::none()
    };
    AsyncDibaRun::with_faults(problem, graph, config, net, plan).unwrap()
}

/// Wall-clock shard timings are the one field allowed to differ between
/// executions of the same trajectory; everything else must match bitwise.
fn mask(r: &RoundRecord) -> RoundRecord {
    let mut m = *r;
    m.shard_nanos = [0; MAX_TIMED_SHARDS];
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial and pooled engines: `step_many(k)` leaves the identical
    /// final allocation and the identical recorded round stream as `k`
    /// individual steps.
    #[test]
    fn sync_batching_is_invisible(
        seed in 0u64..1_000,
        n in 8usize..48,
        k in 1usize..60,
        threads in (0usize..3).prop_map(|i| [1usize, 2, 7][i]),
    ) {
        let mut stepped = sync_run(n, seed, Threads::Fixed(threads), k);
        let mut batched = sync_run(n, seed, Threads::Fixed(threads), k);
        for _ in 0..k {
            stepped.step();
        }
        batched.step_many(k);

        prop_assert_eq!(stepped.allocation(), batched.allocation());
        prop_assert_eq!(stepped.residuals(), batched.residuals());
        prop_assert_eq!(stepped.node_states(), batched.node_states());
        prop_assert_eq!(stepped.iterations(), batched.iterations());

        let rs: Vec<_> = stepped.telemetry().unwrap().rounds().map(mask).collect();
        let rb: Vec<_> = batched.telemetry().unwrap().rounds().map(mask).collect();
        prop_assert_eq!(rs.len(), k);
        prop_assert_eq!(rs, rb, "record streams diverged at {} threads", threads);
        prop_assert_eq!(
            stepped.telemetry().unwrap().to_jsonl(),
            batched.telemetry().unwrap().to_jsonl(),
            "rendered traces diverged"
        );
    }

    /// The asynchronous engine, fault-free and under live message faults
    /// plus a crash/restart: batching is invisible there too (RNG streams
    /// included).
    #[test]
    fn async_batching_is_invisible(
        seed in 0u64..1_000,
        n in 8usize..32,
        k in 1usize..120,
        drop in ((0usize..2), (0.05f64..0.3)).prop_map(|(z, d)| if z == 0 { 0.0 } else { d }),
    ) {
        let mut stepped = async_run(n, seed, drop, k);
        let mut batched = async_run(n, seed, drop, k);
        for _ in 0..k {
            stepped.step();
        }
        batched.step_many(k);

        prop_assert_eq!(stepped.allocation(), batched.allocation());
        prop_assert_eq!(stepped.residuals(), batched.residuals());
        prop_assert_eq!(stepped.escrow_total(), batched.escrow_total());
        prop_assert_eq!(stepped.stranded(), batched.stranded());
        prop_assert_eq!(stepped.in_flight(), batched.in_flight());

        let rs: Vec<_> = stepped.telemetry().unwrap().rounds().map(mask).collect();
        let rb: Vec<_> = batched.telemetry().unwrap().rounds().map(mask).collect();
        prop_assert_eq!(rs.len(), k);
        prop_assert_eq!(rs, rb, "async record streams diverged (drop = {})", drop);
        prop_assert_eq!(
            stepped.telemetry().unwrap().to_jsonl(),
            batched.telemetry().unwrap().to_jsonl(),
            "rendered async traces diverged"
        );
    }
}
