//! Regression property: a benign [`FaultPlan`] must not change behaviour.
//!
//! The fault-injection layer shares `AsyncDibaRun::step` with the plain
//! asynchronous run, so the guarantee the rest of the test suite leans on —
//! fault-free runs are bit-for-bit the same as before the layer existed —
//! has to be pinned explicitly: for *any* timing configuration and seed,
//! `with_faults(…, FaultPlan::none())` walks the exact same trajectory as
//! the `AsyncConfig`-only constructor, state and message queue included.

use dpc_alg::diba::DibaConfig;
use dpc_alg::diba_async::{AsyncConfig, AsyncDibaRun};
use dpc_alg::faults::FaultPlan;
use dpc_alg::problem::PowerBudgetProblem;
use dpc_models::units::Watts;
use dpc_models::workload::ClusterBuilder;
use dpc_topology::Graph;
use proptest::prelude::*;

fn build(n: usize, net: AsyncConfig, plan: Option<FaultPlan>) -> AsyncDibaRun {
    let cluster = ClusterBuilder::new(n).seed(11).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(170.0 * n as f64)).unwrap();
    let graph = Graph::ring_with_chords(n, 2);
    match plan {
        None => AsyncDibaRun::new(problem, graph, DibaConfig::default(), net).unwrap(),
        Some(p) => {
            AsyncDibaRun::with_faults(problem, graph, DibaConfig::default(), net, p).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitwise trajectory identity between the legacy constructor and the
    /// fault-aware one under the benign plan, across timing configs. The
    /// comparisons are exact (`==` on `f64`), not approximate: the benign
    /// plan consumes zero fault-RNG draws and takes no fault branches.
    #[test]
    fn zero_fault_plan_is_trajectory_identical(
        seed in 0u64..1_000,
        activation in 0.3f64..=1.0,
        delay_prob in 0.0f64..0.7,
        max_delay in 1usize..8,
        n in 8usize..40,
    ) {
        let net = AsyncConfig { activation, delay_prob, max_delay, seed };
        let mut plain = build(n, net, None);
        let mut benign = build(n, net, Some(FaultPlan::none()));
        for round in 0..150 {
            plain.step();
            benign.step();
            prop_assert_eq!(
                plain.residuals(), benign.residuals(),
                "residuals diverged at round {}", round
            );
        }
        prop_assert_eq!(plain.allocation(), benign.allocation());
        prop_assert_eq!(plain.in_flight(), benign.in_flight());
        prop_assert_eq!(plain.total_power(), benign.total_power());
        prop_assert_eq!(plain.total_utility(), benign.total_utility());
        prop_assert_eq!(plain.conservation_drift(), benign.conservation_drift());
    }

    /// The default path itself is seed-deterministic (two identical runs
    /// never diverge) — the property the byte-identical bench relies on.
    #[test]
    fn default_path_is_seed_deterministic(seed in 0u64..1_000) {
        let net = AsyncConfig { seed, ..AsyncConfig::default() };
        let mut a = build(16, net, None);
        let mut b = build(16, net, Some(FaultPlan::none()));
        a.run(300);
        b.run(300);
        prop_assert_eq!(a.residuals(), b.residuals());
        prop_assert_eq!(a.allocation(), b.allocation());
    }
}
