//! The `dpc` operator CLI. All logic lives in [`dpc::cli`]; this wrapper
//! only handles process I/O and exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dpc::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
