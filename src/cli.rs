//! The `dpc` command-line interface: solve, simulate, split and plan from a
//! shell, optionally against an operator's own measurement traces.
//!
//! The parser is hand-rolled (`--flag value` pairs after a subcommand) so
//! the workspace stays dependency-light; every command returns its report
//! as a `String` so the logic is unit-testable without spawning processes.

use crate::alg::diba::{DibaConfig, DibaRun};
use crate::alg::exec::{Precision, Threads};
use crate::alg::primal_dual::{self, PrimalDualConfig};
use crate::alg::problem::PowerBudgetProblem;
use crate::alg::{baselines, centralized};
use crate::models::metrics::snp_arithmetic;
use crate::models::traces::{parse_trace_csv, utilities_from_traces};
use crate::models::units::{Seconds, Watts};
use crate::models::workload::ClusterBuilder;
use crate::models::QuadraticUtility;
use crate::sim::budgeter::DibaBudgeter;
use crate::sim::engine::{DynamicSim, SimConfig};
use crate::sim::schedule::BudgetSchedule;
use crate::thermal::partition::{self_consistent_partition, uniform_rack_map};
use crate::thermal::planning::{evaluate, greedy, local_search, table5_1_rack_classes, Placement};
use crate::thermal::{RoomLayout, ThermalModel};
use crate::topology::Graph;
use std::collections::HashMap;
use std::fmt;

/// CLI failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

/// Parsed `--flag value` options after the subcommand.
#[derive(Debug, Clone, Default)]
pub struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Rejects dangling flags, repeated flags and positional arguments.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(CliError(format!("unexpected positional argument `{a}`")));
            };
            let Some(v) = it.next() else {
                return Err(CliError(format!("flag --{key} needs a value")));
            };
            if values.insert(key.to_string(), v.clone()).is_some() {
                return Err(CliError(format!("flag --{key} given twice")));
            }
        }
        Ok(Options { values })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| CliError(format!("bad value for --{key}: {e}"))),
        }
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        Ok(self.get(key)?.unwrap_or(default))
    }

    fn string(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

/// Usage text.
pub fn usage() -> String {
    "\
dpc — decentralized power capping toolkit

USAGE: dpc <command> [--flag value ...]

COMMANDS:
  solve      allocate a budget once and report every scheme
             --servers N (100)  --budget-watts W (172·N)  --seed S (0)
             --topology ring|chords|grid|torus|hypercube|random-regular (ring)  --trace FILE.csv
  simulate   run a dynamic DiBA simulation
             --servers N (100)  --budget-watts W (176·N)  --seconds T (60)
             --churn-secs S     --phase-secs S            --seed S (0)
             --precision reference|fast (reference)
  split      self-consistent computing/cooling split of a facility budget
             --total-mw X (0.66)
  plan       thermal-aware rack layout for the heterogeneous paper room
             --utilization U (1.0)  --iterations K (40000)  --seed S (0)
  fxplore    firmware sub-cluster exploration over the HPC workload catalog
             --k K (4)  --objective runtime|energy (runtime)  --seed S (0)
  bench      time the DiBA round engine, serial vs scoped vs pooled vs fast
             tier, write JSON
             --sizes N,N,... (1000,10000,100000)  --threads T|auto (auto)
             --rounds R (scaled per size)  --out FILE (BENCH_round_engine.json)
             --precision reference|fast (reference; selects which speedup
             --min-speedup gates: pooled/serial or fast/serial)
             --min-speedup X (fail if the gated speedup drops below X; skipped
             with a logged reason on single-core hosts)
             --trace FILE (also record a JSONL round trace at the smallest size)
  faults     sweep message drop rate x node churn, check recovery, write JSON
             --servers N (48)  --rounds R (1500)  --seed S (0)
             --drops P,P,... (0,0.05,0.1,0.2)
             --out FILE (BENCH_fault_resilience.json)
             --trace FILE (also record a JSONL crash+restart round trace)
  replay     drive a scenario timeline against a warm-started DiBA
             --scenario FILE (the scenario text format; see README)
             --cold on|off (on; also measure a cold start per event group)
             --threads T|auto (auto)  --precision reference|fast (reference)
             --tol W (1e-2)  --stable-rounds R (10)  --max-rounds R (200000)
             --out FILE (also write the per-event JSON report)
             --bench [FILE]  run the warm-vs-cold dynamic sweep instead and
             write BENCH_dynamic.json (or FILE); --sizes N,N,... (1000,10000)
             --seed S (0)
  hier       solve a hierarchical multi-tenant budget tree
             --servers N (96)  --budget-watts W (170·N)  --seed S (0)
             --fanout F (4)  --depth D (1)  --leaf oracle|diba (oracle)
             --tenants K (0, striped caps at 90% of tenant peak)
             --tol X (0.015)  --max-rounds R (200000)
             --threads T|auto (auto)  --precision reference|fast (reference)
             --domains FILE (also write per-domain JSONL records)
             --bench [FILE]  run the fanout × depth sweep instead and write
             BENCH_hierarchy.json (or FILE); --fanouts F,F,... (2,4)
             --depths D,D,... (1,2)  --big N (0; adds the ≥100k two-level
             DiBA row when positive)
  trace      run one solver with the round recorder attached, write a trace
             --solver diba|async|primal-dual (diba)  --servers N (64)
             --budget-watts W (170·N)  --seed S (0)  --rounds R (600)
             --topology ring|chords|grid|torus|hypercube|random-regular (ring)  --threads T|auto (auto)
             --format jsonl|csv|prom (jsonl)  --capacity C (rounds)
             --drop P (0, async only)  --crash-round R (async only)
             --out FILE (TRACE.jsonl)
  cluster    deploy N DiBA node agents locally and report the allocation
             --servers N (8)  --transport inproc|tcp|lockstep|reactor (inproc)
             --budget-watts W (170·N)  --seed S (0)
             --topology ring|chords|grid|torus|hypercube|random-regular (ring)
             --shards auto|K (auto; load-driven reactor shard count from
             N, degree and host cores — the header reports the choice;
             K pins it, 0 is a spelling of auto)
             --tol W (1e-4)
             --max-rounds R (20000)  --sample-every K (0, merge telemetry)
             --bench [FILE]  run the transport throughput sweep (plus the
             reactor scale rows and the topology convergence table) instead
             over --sizes N,N,... (8,64); FILE defaults to BENCH_runtime.json
             --scale on|off (on; off skips the 1k/10k rows and the table)
             --min-msgs-speedup X (with --bench: also time batched vs
             per-message framing at N=1024 and fail below X; skipped with a
             note on single-core hosts)
  node       run ONE DiBA agent over TCP (one process per server)
             --id I (required)  --servers N (4)  --listen IP:PORT (127.0.0.1:0)
             --peers j=ip:port,... (dial addresses of the HIGHER-id neighbors;
             lower-id neighbors dial this node's --listen address)
             --budget-watts W (170·N)  --seed S (0)
             --topology ring|chords|grid|torus|hypercube|random-regular
             --tol W (1e-4)  --max-rounds R (20000)  --timeout-secs T (10)
  help       this text
"
    .to_string()
}

/// Writes `contents` to `path`, creating missing parent directories first.
/// All CLI report and trace writes go through here so a bad `--out`
/// surfaces as a typed error naming the offending path instead of a bare
/// "No such file or directory".
fn write_output(path: &str, contents: &str) -> Result<(), CliError> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                CliError(format!(
                    "cannot create directory {} for --out {path}: {e}",
                    parent.display()
                ))
            })?;
        }
    }
    std::fs::write(p, contents).map_err(|e| CliError(format!("cannot write {path}: {e}")))
}

fn load_utilities(opts: &Options, n: usize, seed: u64) -> Result<Vec<QuadraticUtility>, CliError> {
    match opts.string("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let traces = parse_trace_csv(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
            utilities_from_traces(&traces).map_err(|e| CliError(format!("{path}: fit: {e}")))
        }
        None => Ok(ClusterBuilder::new(n).seed(seed).build().utilities()),
    }
}

/// The most-square `rows × cols = n` factorization, for the wrap-around
/// families that want a rectangle.
fn rect_dims(n: usize, flag: &str) -> Result<(usize, usize), CliError> {
    let mut side = (n as f64).sqrt().floor() as usize;
    while side > 1 && !n.is_multiple_of(side) {
        side -= 1;
    }
    if side < 1 || side * (n / side) != n {
        return Err(CliError(format!(
            "--topology {flag} needs a rectangular n, got {n}"
        )));
    }
    Ok((side, n / side))
}

fn graph_for(name: &str, n: usize, seed: u64) -> Result<Graph, CliError> {
    match name {
        "ring" => Ok(Graph::ring(n)),
        "chords" => Ok(Graph::ring_with_chords(n, (n / 8).max(2))),
        "grid" => {
            let (rows, cols) = rect_dims(n, "grid")?;
            Ok(Graph::grid(rows, cols))
        }
        "torus" => {
            let (rows, cols) = rect_dims(n, "torus")?;
            Graph::torus(rows, cols).map_err(|e| CliError(format!("--topology torus: {e}")))
        }
        "hypercube" => {
            if !n.is_power_of_two() {
                return Err(CliError(format!(
                    "--topology hypercube needs a power-of-two n, got {n}"
                )));
            }
            Ok(Graph::hypercube(n.trailing_zeros()))
        }
        "random-regular" => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            Graph::random_regular(n, 4, &mut rng, 200)
                .map_err(|e| CliError(format!("--topology random-regular: {e}")))
        }
        other => Err(CliError(format!(
            "unknown topology `{other}`; expected ring, chords, grid, torus, \
             hypercube or random-regular"
        ))),
    }
}

/// `dpc solve`.
pub fn cmd_solve(opts: &Options) -> Result<String, CliError> {
    let seed: u64 = opts.get_or("seed", 0)?;
    let n: usize = opts.get_or("servers", 100)?;
    if n == 0 {
        return Err(CliError("--servers must be positive".into()));
    }
    let utilities = load_utilities(opts, n, seed)?;
    let n = utilities.len();
    let budget = Watts(opts.get_or("budget-watts", 172.0 * n as f64)?);
    let problem = PowerBudgetProblem::new(utilities, budget)
        .map_err(|e| CliError(format!("infeasible problem: {e}")))?;
    let graph = graph_for(opts.string("topology").unwrap_or("ring"), n, seed)?;

    let oracle = centralized::solve(&problem);
    let opt_util = problem.total_utility(&oracle.allocation);
    let uniform = baselines::uniform(&problem);
    let greedy_alloc = baselines::greedy_throughput_per_watt(&problem, Watts(1.0));
    let pd = primal_dual::solve(&problem, &PrimalDualConfig::default());
    let mut diba = DibaRun::new(problem.clone(), graph, DibaConfig::default())
        .map_err(|e| CliError(e.to_string()))?;
    let rounds = diba.run_until_within(opt_util, 0.01, 50_000);

    let snp = |a: &crate::alg::problem::Allocation| snp_arithmetic(&problem.anps(a));
    let mut out = format!(
        "{n} servers, budget {:.2} kW ({:.1} W/server)\n\n\
         scheme        SNP      power (kW)\n\
         ----------------------------------\n",
        budget.kilowatts(),
        budget.0 / n as f64
    );
    for (name, alloc) in [
        ("uniform", &uniform),
        ("greedy", &greedy_alloc),
        ("primal-dual", &pd.allocation),
        ("DiBA", &diba.allocation()),
        ("oracle", &oracle.allocation),
    ] {
        out.push_str(&format!(
            "{name:<12}  {:.4}   {:>9.2}\n",
            snp(alloc),
            alloc.total().kilowatts()
        ));
    }
    out.push_str(&match rounds {
        Some(r) => format!("\nDiBA: 99% of optimal in {r} gossip rounds\n"),
        None => "\nDiBA: did not reach 99% within 50000 rounds\n".to_string(),
    });
    Ok(out)
}

/// `dpc simulate`.
pub fn cmd_simulate(opts: &Options) -> Result<String, CliError> {
    let seed: u64 = opts.get_or("seed", 0)?;
    let n: usize = opts.get_or("servers", 100)?;
    if n == 0 {
        return Err(CliError("--servers must be positive".into()));
    }
    let cluster = ClusterBuilder::new(n).seed(seed).build();
    let budget = Watts(opts.get_or("budget-watts", 176.0 * n as f64)?);
    let seconds: f64 = opts.get_or("seconds", 60.0)?;
    let churn: Option<f64> = opts.get("churn-secs")?;
    let phases: Option<f64> = opts.get("phase-secs")?;
    let precision: Precision = opts.get_or("precision", Precision::Reference)?;

    let problem = PowerBudgetProblem::new(cluster.utilities(), budget)
        .map_err(|e| CliError(format!("infeasible problem: {e}")))?;
    let budgeter = DibaBudgeter::new(problem, Graph::ring(n), DibaConfig::default())
        .map_err(|e| CliError(e.to_string()))?;
    let config = SimConfig {
        duration: Seconds(seconds),
        sample_interval: Seconds(2.0),
        rounds_per_sample: 300,
        churn_mean: churn.map(Seconds),
        phase_mean: phases.map(Seconds),
        record_allocations: false,
        threads: Threads::Auto,
        precision,
        faults: None,
        telemetry: dpc_alg::telemetry::TelemetryConfig::off(),
    };
    let mut sim = DynamicSim::new(cluster, budgeter, BudgetSchedule::constant(budget), config);
    let series = sim.run().map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "{n} servers, budget {:.2} kW, {seconds:.0} s simulated\n\
         samples: {}  budget respected: {}\n\
         mean SNP: {:.4}  mean SNP/optimal: {:.4}\n\n{}",
        budget.kilowatts(),
        series.len(),
        series.budget_respected(Watts(1e-6)),
        series.mean_snp(),
        series.mean_optimality(),
        series.to_csv(),
    ))
}

/// `dpc split`.
pub fn cmd_split(opts: &Options) -> Result<String, CliError> {
    let total_mw: f64 = opts.get_or("total-mw", 0.66)?;
    if !(0.1..10.0).contains(&total_mw) {
        return Err(CliError(format!(
            "--total-mw {total_mw} outside the plausible 0.1–10 range"
        )));
    }
    let model = ThermalModel::paper_cluster();
    let map = uniform_rack_map(model.racks());
    let r = self_consistent_partition(
        Watts::from_megawatts(total_mw),
        &model,
        &map,
        Watts(50.0),
        500,
    )
    .map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "total {total_mw:.2} MW -> computing {:.3} MW + cooling {:.3} MW\n\
         supply temperature {:.1}; cooling share {:.1}%; {} iterations\n",
        r.computing.megawatts(),
        r.cooling.megawatts(),
        r.t_sup,
        r.cooling_fraction() * 100.0,
        r.iterations,
    ))
}

/// `dpc plan`.
pub fn cmd_plan(opts: &Options) -> Result<String, CliError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let utilization: f64 = opts.get_or("utilization", 1.0)?;
    if !(0.0..=1.0).contains(&utilization) {
        return Err(CliError("--utilization must be in [0, 1]".into()));
    }
    let iterations: usize = opts.get_or("iterations", 40_000)?;
    let seed: u64 = opts.get_or("seed", 0)?;

    let model = ThermalModel::paper_cluster();
    let d = RoomLayout::paper_cluster().heat_matrix();
    let classes = table5_1_rack_classes();
    let powers: Vec<Watts> = (0..80)
        .map(|i| {
            let c = classes[i / 20];
            c.idle + (c.peak - c.idle) * utilization
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let oblivious =
        evaluate(&model, &Placement::identity(80), &powers).map_err(|e| CliError(e.to_string()))?;
    let mut out = format!(
        "80 heterogeneous racks at {:.0}% utilization\n\n\
         method        t_sup       cooling    saving\n\
         --------------------------------------------\n\
         oblivious     {:.2} °C  {:>7.1} kW       -\n",
        utilization * 100.0,
        oblivious.t_sup.0,
        oblivious.cooling.kilowatts(),
    );
    for (name, placement) in [
        ("greedy", greedy(&d, &powers)),
        (
            "local search",
            local_search(&d, &powers, iterations, &mut rng),
        ),
    ] {
        let e = evaluate(&model, &placement, &powers).map_err(|e| CliError(e.to_string()))?;
        out.push_str(&format!(
            "{name:<12}  {:.2} °C  {:>7.1} kW  {:>5.1}%\n",
            e.t_sup.0,
            e.cooling.kilowatts(),
            (1.0 - e.cooling / oblivious.cooling) * 100.0,
        ));
    }
    Ok(out)
}

/// `dpc fxplore`.
pub fn cmd_fxplore(opts: &Options) -> Result<String, CliError> {
    use crate::firmware::config::FirmwareConfig;
    use crate::firmware::explore::Objective;
    use crate::firmware::response::ResponseModel;
    use crate::firmware::subcluster::fxplore_sc;
    use crate::models::benchmark::{WorkloadSpec, HPC_BENCHMARKS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let k: usize = opts.get_or("k", 4)?;
    if !(1..=HPC_BENCHMARKS.len()).contains(&k) {
        return Err(CliError(format!(
            "--k must be 1..={}",
            HPC_BENCHMARKS.len()
        )));
    }
    let objective = match opts.string("objective").unwrap_or("runtime") {
        "runtime" => Objective::Runtime,
        "energy" => Objective::Energy,
        other => return Err(CliError(format!("unknown objective `{other}`"))),
    };
    let seed: u64 = opts.get_or("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let specs: Vec<&WorkloadSpec> = HPC_BENCHMARKS.iter().collect();
    let (clustering, configs) = fxplore_sc(&specs, k, objective, 0.01, &mut rng);

    let mut out = format!(
        "{k} sub-clusters over {} workloads

",
        specs.len()
    );
    for (c, (cfg, result)) in configs.iter().enumerate() {
        let members: Vec<&str> = clustering
            .members(c)
            .into_iter()
            .map(|i| specs[i].name)
            .collect();
        out.push_str(&format!(
            "cluster {c}: config [{cfg}] ({} reboots)  members: {}
",
            result.reboots,
            members.join(", ")
        ));
    }
    let mut gain = 0.0;
    for (i, spec) in specs.iter().enumerate() {
        let m = ResponseModel::for_spec(spec);
        let cfg = configs[clustering.assignments()[i]].0;
        gain += 1.0 - m.runtime(cfg) / m.runtime(FirmwareConfig::all_enabled());
    }
    out.push_str(&format!(
        "
mean runtime improvement over all-enabled: {:.1}%
",
        gain / specs.len() as f64 * 100.0
    ));
    Ok(out)
}

/// `dpc bench`.
pub fn cmd_bench(opts: &Options) -> Result<String, CliError> {
    use dpc_bench::roundbench::{
        rounds_for, run_round_bench, traced_run, SizeResult, DEFAULT_SIZES,
    };

    let sizes: Vec<usize> = match opts.string("sizes") {
        None => DEFAULT_SIZES.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|e| CliError(format!("bad value in --sizes: `{s}`: {e}")))
            })
            .collect::<Result<_, _>>()?,
    };
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(CliError("--sizes needs positive cluster sizes".into()));
    }
    let threads: Threads = opts.get_or("threads", Threads::Auto)?;
    let rounds: Option<usize> = opts.get("rounds")?;
    if rounds == Some(0) {
        return Err(CliError("--rounds must be positive".into()));
    }
    let min_speedup: Option<f64> = opts.get("min-speedup")?;
    let precision: Precision = opts.get_or("precision", Precision::Reference)?;
    let out_path = opts.string("out").unwrap_or("BENCH_round_engine.json");

    let report = run_round_bench(&sizes, threads, rounds);
    if report.results.iter().any(|r| !r.bitwise_identical) {
        return Err(CliError(
            "serial and parallel trajectories diverged — round engine bug".into(),
        ));
    }
    if let Some(bad) = report
        .results
        .iter()
        .find(|r| !r.fast_within_eps(report.equiv_eps_watts))
    {
        return Err(CliError(format!(
            "fast tier diverged from the serial reference: max deviation {:.3e} W at \
             n={} exceeds the {} W equivalence budget — fast kernel bug",
            bad.fast_max_dev_watts, bad.n, report.equiv_eps_watts
        )));
    }
    write_output(out_path, &report.to_json())?;
    let mut out = format!("{}\nreport written to {out_path}\n", report.to_table());
    if let Some(min) = min_speedup {
        if report.host_parallelism <= 1 {
            out.push_str(&format!(
                "min-speedup {min} ({precision}) skipped: host_parallelism is {} — the \
                 timed runs share one core, so a speedup floor would only measure \
                 scheduler noise\n",
                report.host_parallelism
            ));
        } else if precision == Precision::Reference && report.threads <= 1 {
            out.push_str(&format!(
                "min-speedup {min} skipped: the bench resolved to {} worker — pooled \
                 and serial are the same execution\n",
                report.threads
            ));
        } else {
            // Which speedup the floor gates follows --precision: the
            // reference gate guards the pooled engine against parallel
            // regressions, the fast gate guards the vectorized kernel tier
            // against losing its edge over the reference kernel.
            let (speedup, label): (fn(&SizeResult) -> f64, &str) = match precision {
                Precision::Reference => (SizeResult::pooled_speedup, "pooled"),
                Precision::Fast => (SizeResult::fast_speedup, "fast"),
            };
            if let Some(worst) = report
                .results
                .iter()
                .min_by(|a, b| speedup(a).total_cmp(&speedup(b)))
            {
                if speedup(worst) < min {
                    return Err(CliError(format!(
                        "{label} round engine regressed: speedup {:.3} at n={} is below \
                         the --min-speedup floor {min}",
                        speedup(worst),
                        worst.n
                    )));
                }
                out.push_str(&format!(
                    "min-speedup {min} satisfied: worst {label} speedup {:.3} at n={}\n",
                    speedup(worst),
                    worst.n
                ));
            }
        }
    }
    if let Some(trace_path) = opts.string("trace") {
        let n = *sizes.iter().min().expect("sizes is non-empty");
        let t = traced_run(n, rounds.unwrap_or_else(|| rounds_for(n)), threads);
        write_output(trace_path, &t.to_jsonl())?;
        out.push_str(&format!(
            "round trace ({} rounds at n={n}) written to {trace_path}\n",
            t.rounds_recorded()
        ));
    }
    Ok(out)
}

/// `dpc faults`.
pub fn cmd_faults(opts: &Options) -> Result<String, CliError> {
    use dpc_bench::faultbench::{run_fault_bench, traced_cell, Churn, DEFAULT_DROPS};

    let servers: usize = opts.get_or("servers", 48)?;
    if servers < 3 {
        return Err(CliError("--servers must be at least 3".into()));
    }
    let rounds: usize = opts.get_or("rounds", 1_500)?;
    if rounds == 0 {
        return Err(CliError("--rounds must be positive".into()));
    }
    let seed: u64 = opts.get_or("seed", 0)?;
    let drops: Vec<f64> = match opts.string("drops") {
        None => DEFAULT_DROPS.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|e| CliError(format!("bad value in --drops: `{s}`: {e}")))
            })
            .collect::<Result<_, _>>()?,
    };
    if drops.is_empty() || drops.iter().any(|d| !(0.0..1.0).contains(d)) {
        return Err(CliError("--drops needs probabilities in [0, 1)".into()));
    }
    let out_path = opts.string("out").unwrap_or("BENCH_fault_resilience.json");

    let report = run_fault_bench(servers, rounds, seed, &drops);
    if !report.all_recovered() {
        return Err(CliError(format!(
            "a sweep cell failed to recover — fault-handling bug:\n{}",
            report.to_table()
        )));
    }
    write_output(out_path, &report.to_json())?;
    let mut out = format!(
        "{}\nall cells re-attained a feasible allocation with the dead \
         node's budget re-absorbed\nreport written to {out_path}\n",
        report.to_table()
    );
    if let Some(trace_path) = opts.string("trace") {
        let t = traced_cell(servers, rounds, seed, drops[0], Churn::CrashRestart);
        write_output(trace_path, &t.to_jsonl())?;
        out.push_str(&format!(
            "crash+restart trace ({} rounds, {} fault events) written to {trace_path}\n",
            t.rounds_recorded(),
            t.events_recorded()
        ));
    }
    Ok(out)
}

/// `dpc replay`: drives a scenario event timeline against a warm-started
/// DiBA and reports per-event re-convergence (optionally vs a cold start
/// on the identical mutated instance), or — with `--bench` — runs the
/// warm-vs-cold dynamic sweep and writes `BENCH_dynamic.json`.
///
/// Scenario-mode output is deterministic: the report carries round counts
/// and allocations only, never wall-clock, so `--out` files are
/// byte-identical across reruns (the CI replay smoke step relies on this).
/// Bench mode reports `events_per_sec` and `host_parallelism`, which are
/// host-dependent by design.
pub fn cmd_replay(opts: &Options) -> Result<String, CliError> {
    use crate::sim::replay::{replay, ReplayConfig, Scenario, SettleCriterion};

    if let Some(bench_out) = opts.string("bench") {
        let seed: u64 = opts.get_or("seed", 0)?;
        let sizes: Vec<usize> = match opts.string("sizes") {
            None => vec![1_000, 10_000],
            Some(spec) => spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|e| CliError(format!("bad value in --sizes: `{s}`: {e}")))
                })
                .collect::<Result<_, _>>()?,
        };
        if sizes.is_empty() || sizes.iter().any(|&n| n < 16) {
            return Err(CliError(
                "--sizes needs cluster sizes of at least 16".into(),
            ));
        }
        let report = dpc_bench::replaybench::run(&sizes, seed);
        if !report.warm_beats_cold() {
            return Err(CliError(format!(
                "warm start failed to beat cold restart on small events:\n{}",
                report.to_table()
            )));
        }
        write_output(bench_out, &report.to_json())?;
        return Ok(format!(
            "{}\nreport written to {bench_out}\n",
            report.to_table()
        ));
    }

    let path = opts
        .string("scenario")
        .ok_or_else(|| CliError("replay needs --scenario FILE or --bench".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read --scenario {path}: {e}")))?;
    let scenario = Scenario::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    let compare_cold = match opts.string("cold").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(CliError(format!("--cold must be on|off, got `{other}`"))),
    };
    let settle = SettleCriterion {
        tol_watts: opts.get_or("tol", 1e-2)?,
        stable_rounds: opts.get_or("stable-rounds", 10)?,
        max_rounds: opts.get_or("max-rounds", 200_000)?,
    };
    let config = ReplayConfig {
        diba: DibaConfig {
            threads: opts.get_or("threads", Threads::Auto)?,
            precision: opts.get_or("precision", Precision::Reference)?,
            ..DibaConfig::default()
        },
        settle,
        compare_cold,
    };
    let outcome = replay(&scenario, &config).map_err(|e| CliError(format!("{path}: {e}")))?;
    let report = &outcome.report;
    if let Some(out_path) = opts.string("out") {
        write_output(out_path, &report.to_json())?;
    }
    let mut out = report.to_table();
    if !report.all_settled() {
        return Err(CliError(format!(
            "an event group failed to re-settle within --max-rounds:\n{out}"
        )));
    }
    if let Some(out_path) = opts.string("out") {
        out.push_str(&format!("report written to {out_path}\n"));
    }
    Ok(out)
}

fn parse_list(opts: &Options, key: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
    match opts.string(key) {
        None => Ok(default.to_vec()),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|e| CliError(format!("bad value in --{key}: `{s}`: {e}")))
            })
            .collect(),
    }
}

/// `dpc hier`: solves one hierarchical budget tree (or, with `--bench`,
/// runs the fanout × depth sweep and writes `BENCH_hierarchy.json`).
pub fn cmd_hier(opts: &Options) -> Result<String, CliError> {
    use crate::alg::hierarchy::{BudgetTree, DomainSpec, LeafSolver};
    use crate::alg::telemetry::{domains_to_jsonl, DomainRecord};

    let seed: u64 = opts.get_or("seed", 0)?;

    if let Some(bench_out) = opts.string("bench") {
        let servers: usize = opts.get_or("servers", 96)?;
        if servers < 8 {
            return Err(CliError("--servers must be at least 8".into()));
        }
        let fanouts = parse_list(opts, "fanouts", &[2, 4])?;
        let depths = parse_list(opts, "depths", &[1, 2])?;
        if fanouts.iter().any(|&f| f < 2) || depths.contains(&0) {
            return Err(CliError(
                "--fanouts need values of at least 2 and --depths of at least 1".into(),
            ));
        }
        let tenants: usize = opts.get_or("tenants", 2)?;
        let big: usize = opts.get_or("big", 0)?;
        if big > 0 && big < 100_000 {
            return Err(CliError(
                "--big is the ≥100k scalability row; use 0 to skip it".into(),
            ));
        }
        let report = dpc_bench::hierbench::run(
            servers,
            &fanouts,
            &depths,
            seed,
            tenants,
            (big > 0).then_some(big),
        );
        if !report.gates_pass() {
            return Err(CliError(format!(
                "a sweep cell failed its gate:\n{}",
                report.to_table()
            )));
        }
        write_output(bench_out, &report.to_json())?;
        return Ok(format!(
            "{}\nreport written to {bench_out}\n",
            report.to_table()
        ));
    }

    let n: usize = opts.get_or("servers", 96)?;
    if n < 2 {
        return Err(CliError("--servers must be at least 2".into()));
    }
    let budget = Watts(opts.get_or("budget-watts", 170.0 * n as f64)?);
    let fanout: usize = opts.get_or("fanout", 4)?;
    let depth: usize = opts.get_or("depth", 1)?;
    if fanout < 2 {
        return Err(CliError("--fanout must be at least 2".into()));
    }
    let tenants: usize = opts.get_or("tenants", 0)?;
    let utilities = ClusterBuilder::new(n).seed(seed).build().utilities();
    let caps = dpc_bench::hierbench::striped_tenants(&utilities, tenants);
    let leaf = match opts.string("leaf").unwrap_or("oracle") {
        "oracle" => LeafSolver::Oracle,
        "diba" => LeafSolver::Diba {
            config: DibaConfig {
                threads: opts.get_or("threads", Threads::Auto)?,
                precision: opts.get_or("precision", Precision::Reference)?,
                ..DibaConfig::default()
            },
            rel_tol: opts.get_or("tol", 0.015)?,
            max_rounds: opts.get_or("max-rounds", 200_000)?,
        },
        other => {
            return Err(CliError(format!(
                "--leaf must be oracle|diba, got `{other}`"
            )))
        }
    };
    let spec = DomainSpec::uniform(n, fanout, depth);
    let mut tree = BudgetTree::new(utilities, &spec, budget, caps)
        .map_err(|e| CliError(format!("infeasible tree: {e}")))?;
    let sol = tree
        .solve(&leaf)
        .map_err(|e| CliError(format!("tree solve failed: {e}")))?;

    let reports = tree.domain_reports();
    if let Some(path) = opts.string("domains") {
        let records: Vec<DomainRecord> = reports
            .iter()
            .map(|r| DomainRecord {
                path: r.path.clone(),
                depth: r.depth,
                servers: r.servers,
                budget_w: r.budget.0,
                cap_w: r.cap.map(|c| c.0),
                power_w: r.power.0,
                price: r.price,
                rounds: r.rounds,
            })
            .collect();
        write_output(path, &domains_to_jsonl(&records))?;
    }

    let mut out = format!(
        "hierarchical budget tree: {n} servers, fanout {fanout}, depth {depth}\n\n\
         {:>5}  {:>7}  {:>12}  {:>12}  {:>12}  {:>9}  path\n",
        "depth", "servers", "budget (W)", "power (W)", "price", "rounds",
    );
    for r in &reports {
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>12.2}  {:>12.2}  {:>12.6}  {:>9}  {}\n",
            r.depth, r.servers, r.budget.0, r.power.0, r.price, r.rounds, r.path,
        ));
    }
    out.push_str(&format!(
        "\ntotal power {:.2} W of {:.2} W budget, utility {:.4}, largest ring {} servers\n",
        sol.total_power.0, budget.0, sol.total_utility, sol.max_leaf_servers,
    ));
    for t in &sol.tenants {
        out.push_str(&format!(
            "tenant {:>8}: usage {:>10.2} W of cap {:>10.2} W, price {:.6}{}\n",
            t.name,
            t.usage.0,
            t.cap.0,
            t.price,
            if t.binding { " (binding)" } else { "" },
        ));
    }
    if !tree.nested_feasible(Watts(1e-9 * budget.0.max(1.0))) {
        return Err(CliError(format!(
            "nested-constraint chain violated:\n{out}"
        )));
    }
    if let Some(path) = opts.string("domains") {
        out.push_str(&format!("domain records written to {path}\n"));
    }
    Ok(out)
}

/// `dpc trace`: runs one solver with the round recorder attached and
/// writes the captured telemetry in the requested sink format. The
/// recorded trajectory is bitwise identical to an untraced run, and the
/// JSONL/CSV output is byte-identical across reruns with the same flags.
pub fn cmd_trace(opts: &Options) -> Result<String, CliError> {
    use crate::alg::diba_async::{AsyncConfig, AsyncDibaRun};
    use crate::alg::faults::{FaultPlan, LinkFaults, NodeFaultKind};
    use crate::alg::telemetry::{Telemetry, TelemetryConfig};

    let seed: u64 = opts.get_or("seed", 0)?;
    let n: usize = opts.get_or("servers", 64)?;
    if n < 3 {
        return Err(CliError("--servers must be at least 3".into()));
    }
    let rounds: usize = opts.get_or("rounds", 600)?;
    if rounds == 0 {
        return Err(CliError("--rounds must be positive".into()));
    }
    let capacity: usize = opts.get_or("capacity", rounds)?;
    if capacity == 0 {
        return Err(CliError("--capacity must be positive".into()));
    }
    let budget = Watts(opts.get_or("budget-watts", 170.0 * n as f64)?);
    let threads: Threads = opts.get_or("threads", Threads::Auto)?;
    let drop: f64 = opts.get_or("drop", 0.0)?;
    if !(0.0..1.0).contains(&drop) {
        return Err(CliError("--drop needs a probability in [0, 1)".into()));
    }
    let crash_round: Option<usize> = opts.get("crash-round")?;
    let solver = opts.string("solver").unwrap_or("diba");
    let format = opts.string("format").unwrap_or("jsonl");
    let out_path = opts.string("out").unwrap_or("TRACE.jsonl");

    let utilities = ClusterBuilder::new(n).seed(seed).build().utilities();
    let problem = PowerBudgetProblem::new(utilities, budget)
        .map_err(|e| CliError(format!("infeasible problem: {e}")))?;
    let graph = graph_for(opts.string("topology").unwrap_or("ring"), n, seed)?;
    let telemetry = TelemetryConfig::with_capacity(capacity);

    let recorder: Telemetry = match solver {
        "diba" => {
            let config = DibaConfig {
                threads,
                telemetry,
                ..DibaConfig::default()
            };
            let mut run =
                DibaRun::new(problem, graph, config).map_err(|e| CliError(e.to_string()))?;
            run.run(rounds);
            run.telemetry()
                .expect("telemetry was enabled in the config")
                .clone()
        }
        "async" => {
            let config = DibaConfig {
                telemetry,
                ..DibaConfig::default()
            };
            let net = AsyncConfig {
                seed,
                ..AsyncConfig::default()
            };
            let link = LinkFaults {
                drop,
                duplicate: drop / 2.0,
                reorder: drop,
                ..LinkFaults::none()
            };
            let mut plan = FaultPlan::with_link(seed, link);
            if let Some(r) = crash_round {
                // Same victim rule as the fault sweep: deterministic in the
                // seed, never node 0.
                let victim = 1 + (seed as usize % (n - 1));
                plan = plan.and(r, victim, NodeFaultKind::Crash);
            }
            let mut run = AsyncDibaRun::with_faults(problem, graph, config, net, plan)
                .map_err(|e| CliError(e.to_string()))?;
            run.run(rounds);
            run.telemetry()
                .expect("telemetry was enabled in the config")
                .clone()
        }
        "primal-dual" => {
            let result = primal_dual::solve(&problem, &PrimalDualConfig::default());
            let mut t = Telemetry::new(telemetry);
            t.record_primal_dual(n, budget, &result);
            t
        }
        other => {
            return Err(CliError(format!(
                "unknown solver `{other}`; expected diba, async or primal-dual"
            )))
        }
    };

    let rendered = match format {
        "jsonl" => recorder.to_jsonl(),
        "csv" => recorder.to_csv(),
        "prom" => recorder.prometheus(),
        other => {
            return Err(CliError(format!(
                "unknown format `{other}`; expected jsonl, csv or prom"
            )))
        }
    };
    write_output(out_path, &rendered)?;

    let (sent, dropped, duplicated, bounced) = recorder.message_totals();
    let drift = recorder
        .latest()
        .map(|r| r.conservation_drift())
        .unwrap_or(0.0);
    Ok(format!(
        "{solver} trace: {n} servers, {} rounds recorded ({} retained), {} fault events\n\
         messages: {sent} sent, {dropped} dropped, {duplicated} duplicated, {bounced} bounced\n\
         final conservation drift: {drift:.3e} W\n\
         trace written to {out_path}\n",
        recorder.rounds_recorded(),
        recorder.rounds_retained(),
        recorder.events_recorded(),
    ))
}

/// Maps a runtime failure into the CLI's error type, keeping the typed
/// error's peer address and named reason in the message.
fn runtime_err(e: crate::runtime::RuntimeError) -> CliError {
    CliError(format!("runtime: {e}"))
}

fn parse_transport(name: &str) -> Result<crate::runtime::TransportKind, CliError> {
    match name {
        "inproc" => Ok(crate::runtime::TransportKind::InProcess),
        "tcp" => Ok(crate::runtime::TransportKind::Tcp),
        "lockstep" => Ok(crate::runtime::TransportKind::Lockstep),
        "reactor" => Ok(crate::runtime::TransportKind::Reactor),
        other => Err(CliError(format!(
            "unknown transport `{other}`; expected inproc, tcp, lockstep or reactor"
        ))),
    }
}

/// Shared problem/graph/runtime-config derivation for `dpc cluster` and
/// `dpc node` — both must resolve the identical deployment from the same
/// flags or the handshake's topology check will (correctly) refuse to pair
/// them.
fn deployment_for(
    opts: &Options,
    n: usize,
    seed: u64,
) -> Result<
    (
        PowerBudgetProblem,
        Graph,
        crate::runtime::cluster::RuntimeConfig,
    ),
    CliError,
> {
    let budget = Watts(opts.get_or("budget-watts", 170.0 * n as f64)?);
    let utilities = ClusterBuilder::new(n).seed(seed).build().utilities();
    let problem = PowerBudgetProblem::new(utilities, budget)
        .map_err(|e| CliError(format!("infeasible problem: {e}")))?;
    let graph = graph_for(opts.string("topology").unwrap_or("ring"), n, seed)?;
    let tol: f64 = opts.get_or("tol", 1e-4)?;
    if !tol.is_finite() || tol <= 0.0 {
        return Err(CliError("--tol must be positive".into()));
    }
    let max_rounds: usize = opts.get_or("max-rounds", 20_000)?;
    if max_rounds == 0 {
        return Err(CliError("--max-rounds must be positive".into()));
    }
    let timeout_secs: f64 = opts.get_or("timeout-secs", 10.0)?;
    if !timeout_secs.is_finite() || timeout_secs <= 0.0 {
        return Err(CliError("--timeout-secs must be positive".into()));
    }
    let rt = crate::runtime::cluster::RuntimeConfig {
        settle_tol: tol,
        max_rounds,
        handshake_timeout: std::time::Duration::from_secs_f64(timeout_secs),
        sample_every: opts.get_or("sample-every", 0)?,
        shards: parse_shards(opts.string("shards"))?,
        ..crate::runtime::cluster::RuntimeConfig::default()
    };
    Ok((problem, graph, rt))
}

/// Parses `--shards auto|K`. `0` is accepted as a spelling of `auto` for
/// continuity with the old numeric-only flag.
fn parse_shards(spec: Option<&str>) -> Result<crate::runtime::cluster::ShardCount, CliError> {
    use crate::runtime::cluster::ShardCount;
    match spec {
        None | Some("auto") => Ok(ShardCount::Auto),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Ok(ShardCount::Auto),
            Ok(k) => Ok(ShardCount::Fixed(k)),
            Err(_) => Err(CliError(format!(
                "--shards must be `auto` or a shard count, got `{s}`"
            ))),
        },
    }
}

/// `dpc cluster`: spawn N node agents locally (in-process channels or TCP
/// loopback sockets) and report the converged allocation, or run the
/// transport throughput sweep with `--bench`.
pub fn cmd_cluster(opts: &Options) -> Result<String, CliError> {
    use dpc_bench::runtimebench::{run_runtime_bench, run_runtime_bench_full, DEFAULT_SIZES};

    if let Some(bench_path) = opts.string("bench") {
        let sizes: Vec<usize> = match opts.string("sizes") {
            None => DEFAULT_SIZES.to_vec(),
            Some(spec) => spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|e| CliError(format!("bad value in --sizes: `{s}`: {e}")))
                })
                .collect::<Result<_, _>>()?,
        };
        if sizes.is_empty() || sizes.iter().any(|&n| n < 3) {
            return Err(CliError("--sizes needs cluster sizes of at least 3".into()));
        }
        let seed: u64 = opts.get_or("seed", 0)?;
        let report = match opts.string("scale").unwrap_or("on") {
            "on" => run_runtime_bench_full(&sizes, seed),
            "off" => run_runtime_bench(&sizes, seed),
            other => {
                return Err(CliError(format!(
                    "--scale must be on or off, got `{other}`"
                )))
            }
        };
        if !report.all_converged() {
            return Err(CliError(format!(
                "a bench cell failed to reach convergence quorum:\n{}",
                report.to_table()
            )));
        }
        // Optional framing gate: batched DataBatch frames must beat
        // one-frame-per-message by the given factor. Timing two
        // multi-shard reactors on a single core measures scheduler
        // contention, not framing, so the gate skips there with a note.
        let mut framing_note = String::new();
        if let Some(spec) = opts.string("min-msgs-speedup") {
            let min: f64 = spec
                .parse()
                .map_err(|e| CliError(format!("bad --min-msgs-speedup `{spec}`: {e}")))?;
            let cores = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1);
            if cores < 2 {
                framing_note = format!(
                    "framing gate skipped: host reports {cores} core(s); batched-vs-per-message \
                     timing on one core measures contention, not framing\n"
                );
            } else {
                let cmp = dpc_bench::runtimebench::measure_framing_compare(seed);
                framing_note = format!("{}\n", cmp.to_line());
                if cmp.speedup() < min {
                    return Err(CliError(format!(
                        "framing speedup {:.2}x is below the --min-msgs-speedup gate {min}x\n{}",
                        cmp.speedup(),
                        cmp.to_line(),
                    )));
                }
            }
        }
        write_output(bench_path, &report.to_json())?;
        return Ok(format!(
            "{}\n{framing_note}report written to {bench_path}\n",
            report.to_table()
        ));
    }

    let seed: u64 = opts.get_or("seed", 0)?;
    let n: usize = opts.get_or("servers", 8)?;
    if n < 3 {
        return Err(CliError("--servers must be at least 3".into()));
    }
    let transport = parse_transport(opts.string("transport").unwrap_or("inproc"))?;
    let (problem, graph, rt) = deployment_for(opts, n, seed)?;
    let rt = crate::runtime::cluster::RuntimeConfig { transport, ..rt };

    let topology_name = opts.string("topology").unwrap_or("ring");
    let spectrum = crate::topology::spectral::consensus_spectrum(&graph, 200);
    let min_degree = (0..graph.len())
        .map(|i| graph.neighbors(i).len())
        .min()
        .unwrap_or(0);
    let topology_line = format!(
        "topology {topology_name} (hash {:#018x}): degree {}..{}, spectral gap {:.4}, \
         mixing ~{:.0} rounds\n",
        graph.topology_hash(),
        min_degree,
        graph.max_degree(),
        spectrum.gap,
        spectrum.mixing_time,
    );

    let outcome = crate::runtime::run_cluster(problem, graph, DibaConfig::default(), &rt)
        .map_err(runtime_err)?;

    // The reactor reports the shard count it actually ran with — under
    // `--shards auto` that is the load-driven choice, so the header is
    // where the user learns what the policy picked.
    let shards_line = match outcome.shards_used {
        Some(shards) => format!(
            "runtime: {shards} reactor shard{} ({})\n",
            if shards == 1 { "" } else { "s" },
            match rt.shards {
                crate::runtime::cluster::ShardCount::Auto => "auto",
                crate::runtime::cluster::ShardCount::Fixed(_) => "pinned",
            },
        ),
        None => String::new(),
    };

    let budget = outcome.budget;
    let mut out = format!(
        "cluster: {n} nodes on {} transport, budget {:.2} kW\n{topology_line}{shards_line}{} \
         in {} rounds, residual drift {:.3e} W\nmessages: {} sent ({} heartbeats), {} received\n\n\
         node   cap (W)    residual (W)  rounds   msgs\n",
        rt.transport.key(),
        budget.kilowatts(),
        if outcome.converged {
            "convergence quorum"
        } else {
            "NO QUORUM (round budget exhausted)"
        },
        outcome.rounds,
        outcome.drift,
        outcome.msgs_sent,
        outcome.heartbeats,
        outcome.msgs_received,
    );
    for r in &outcome.reports {
        out.push_str(&format!(
            "{:>4}   {:>8.3}   {:>11.3e}  {:>6}  {:>5}{}\n",
            r.node,
            r.p,
            r.e,
            r.rounds,
            r.msgs_sent,
            if r.pruned.is_empty() {
                String::new()
            } else {
                format!("  pruned {:?}", r.pruned)
            },
        ));
    }
    out.push_str(&format!(
        "\ntotal power {:.2} W, budget {:.2} W: {}\n",
        outcome.total_power().0,
        budget.0,
        if outcome.total_power() <= budget + Watts(1e-6) {
            "respected"
        } else {
            "VIOLATED"
        },
    ));
    if let Some(threads) = outcome.peak_threads {
        out.push_str(&format!("runtime: peak {threads} threads\n"));
    }
    // Wall-clock-adjacent and host-dependent, so it lives on its own line
    // (containing "rss") that reproducibility comparisons strip — same
    // convention as the bench reports' `per_sec`/`secs` lines.
    if let Some(kb) = outcome.peak_rss_kb {
        out.push_str(&format!("runtime: peak rss {:.1} MB\n", kb as f64 / 1024.0));
    }
    Ok(out)
}

/// `dpc node`: run one DiBA agent over TCP — one invocation per server in
/// a real deployment. Blocks until the agent reaches convergence quorum
/// (or exhausts its round budget) and then reports its final state.
pub fn cmd_node(opts: &Options) -> Result<String, CliError> {
    use crate::runtime::cluster::node_specs;
    use crate::runtime::node::run_node;
    use crate::runtime::tcp::{RetryPolicy, TcpTransport};
    use crate::runtime::transport::HandshakeContext;
    use crate::runtime::Transport;
    use std::net::ToSocketAddrs;

    let id: usize = opts
        .get("id")?
        .ok_or_else(|| CliError("--id is required (which node this process is)".into()))?;
    let seed: u64 = opts.get_or("seed", 0)?;
    let n: usize = opts.get_or("servers", 4)?;
    if n < 3 {
        return Err(CliError("--servers must be at least 3".into()));
    }
    if id >= n {
        return Err(CliError(format!("--id {id} out of range for {n} servers")));
    }
    let (problem, graph, rt) = deployment_for(opts, n, seed)?;
    let rt = crate::runtime::cluster::RuntimeConfig {
        transport: crate::runtime::TransportKind::Tcp,
        ..rt
    };
    let spec = node_specs(&problem, &graph, DibaConfig::default(), &rt)
        .map_err(runtime_err)?
        .swap_remove(id);

    let listen = opts.string("listen").unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| CliError(format!("cannot listen on {listen}: {e}")))?;

    let mut dial_addrs = Vec::new();
    if let Some(peers) = opts.string("peers") {
        for part in peers.split(',').filter(|p| !p.trim().is_empty()) {
            let Some((peer, addr)) = part.split_once('=') else {
                return Err(CliError(format!(
                    "bad --peers entry `{part}`; expected id=ip:port"
                )));
            };
            let peer: usize = peer
                .trim()
                .parse()
                .map_err(|e| CliError(format!("bad peer id in --peers entry `{part}`: {e}")))?;
            let addr = addr
                .trim()
                .to_socket_addrs()
                .map_err(|e| CliError(format!("bad address in --peers entry `{part}`: {e}")))?
                .next()
                .ok_or_else(|| CliError(format!("--peers entry `{part}` resolves to nothing")))?;
            dial_addrs.push((peer, addr));
        }
    }

    let mut transport = TcpTransport::new(
        id,
        listener,
        graph.neighbors(id),
        &dial_addrs,
        RetryPolicy::default(),
    )
    .map_err(runtime_err)?;
    let ctx = HandshakeContext {
        node: id,
        n_nodes: n,
        topology_hash: graph.topology_hash(),
        timeout: rt.handshake_timeout,
    };
    transport.handshake(&ctx).map_err(runtime_err)?;
    let report = run_node(&spec, &mut transport).map_err(runtime_err)?;

    Ok(format!(
        "node {}: {} after {} rounds\ncap {:.3} W, residual {:.3e} W\n\
         messages: {} sent ({} heartbeats), {} received{}\n",
        report.node,
        if report.converged {
            "convergence quorum"
        } else {
            "NO QUORUM (round budget exhausted)"
        },
        report.rounds,
        report.p,
        report.e,
        report.msgs_sent,
        report.heartbeats_sent,
        report.msgs_received,
        if report.pruned.is_empty() {
            String::new()
        } else {
            format!("\npruned silent neighbors: {:?}", report.pruned)
        },
    ))
}

/// `dpc cluster` and `dpc replay` accept `--bench` both bare (report to
/// the command's conventional JSON path) and with an explicit file value;
/// the general parser wants every flag to carry a value, so a bare
/// `--bench` gets the default path spliced in before parsing.
fn normalize_bench_arg(rest: &[String], default_out: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(rest.len() + 1);
    let mut it = rest.iter().peekable();
    while let Some(a) = it.next() {
        out.push(a.clone());
        if a == "--bench" {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {}
                _ => out.push(default_out.to_string()),
            }
        }
    }
    out
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns the user-facing error message on bad input.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(usage());
    };
    let rest = match cmd.as_str() {
        "cluster" => normalize_bench_arg(rest, "BENCH_runtime.json"),
        "replay" => normalize_bench_arg(rest, "BENCH_dynamic.json"),
        "hier" => normalize_bench_arg(rest, "BENCH_hierarchy.json"),
        _ => rest.to_vec(),
    };
    let opts = Options::parse(&rest)?;
    match cmd.as_str() {
        "solve" => cmd_solve(&opts),
        "simulate" => cmd_simulate(&opts),
        "split" => cmd_split(&opts),
        "plan" => cmd_plan(&opts),
        "fxplore" => cmd_fxplore(&opts),
        "bench" => cmd_bench(&opts),
        "faults" => cmd_faults(&opts),
        "replay" => cmd_replay(&opts),
        "hier" => cmd_hier(&opts),
        "trace" => cmd_trace(&opts),
        "cluster" => cmd_cluster(&opts),
        "node" => cmd_node(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError(format!(
            "unknown command `{other}`; try `dpc help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_flags_and_reject_garbage() {
        let o = Options::parse(&args(&["--servers", "10", "--seed", "3"])).unwrap();
        assert_eq!(o.get::<usize>("servers").unwrap(), Some(10));
        assert_eq!(o.get::<u64>("seed").unwrap(), Some(3));
        assert!(Options::parse(&args(&["positional"])).is_err());
        assert!(Options::parse(&args(&["--dangling"])).is_err());
        assert!(Options::parse(&args(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&args(&[])).unwrap().contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("COMMANDS"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.0.contains("unknown command"));
    }

    #[test]
    fn solve_small_cluster_reports_all_schemes() {
        let out = run(&args(&["solve", "--servers", "16", "--seed", "1"])).unwrap();
        for scheme in ["uniform", "greedy", "primal-dual", "DiBA", "oracle"] {
            assert!(out.contains(scheme), "missing {scheme} in:\n{out}");
        }
        assert!(out.contains("gossip rounds"));
    }

    #[test]
    fn solve_accepts_a_trace_file() {
        use crate::models::throughput::CurveParams;
        use crate::models::traces::{write_trace_csv, ServerTrace};
        let traces: Vec<ServerTrace> = (0..6)
            .map(|server| {
                let truth = CurveParams::for_memory_boundedness(server as f64 / 6.0)
                    .utility(Watts(120.0), Watts(200.0));
                ServerTrace {
                    server,
                    points: (0..5)
                        .map(|k| {
                            let p = 120.0 + 20.0 * k as f64;
                            (p, truth.value(Watts(p)))
                        })
                        .collect(),
                }
            })
            .collect();
        let dir = std::env::temp_dir().join("dpc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, write_trace_csv(&traces)).unwrap();
        let out = run(&args(&[
            "solve",
            "--trace",
            path.to_str().unwrap(),
            "--budget-watts",
            "1000",
        ]))
        .unwrap();
        assert!(out.contains("6 servers"), "{out}");
    }

    #[test]
    fn simulate_produces_csv() {
        let out = run(&args(&[
            "simulate",
            "--servers",
            "12",
            "--seconds",
            "6",
            "--phase-secs",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("budget respected: true"), "{out}");
        assert!(out.contains("t_s,budget_w"), "{out}");
    }

    #[test]
    fn fxplore_lists_clusters() {
        let out = run(&args(&["fxplore", "--k", "3"])).unwrap();
        assert!(out.contains("cluster 0"));
        assert!(out.contains("cluster 2"));
        assert!(out.contains("mean runtime improvement"));
        assert!(run(&args(&["fxplore", "--k", "99"])).is_err());
        assert!(run(&args(&["fxplore", "--objective", "frobnicate"])).is_err());
    }

    #[test]
    fn bench_writes_a_json_report() {
        let dir = std::env::temp_dir().join("dpc-cli-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_engine.json");
        let out = run(&args(&[
            "bench",
            "--sizes",
            "120,240",
            "--threads",
            "2",
            "--rounds",
            "30",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("report written"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"round_engine\""), "{json}");
        assert!(json.contains("\"bitwise_identical\": true"), "{json}");
        assert!(run(&args(&["bench", "--sizes", "0"])).is_err());
        assert!(run(&args(&["bench", "--threads", "0"])).is_err());
    }

    #[test]
    fn bench_gates_the_fast_tier_and_names_bad_precision_values() {
        let dir = std::env::temp_dir().join("dpc-cli-bench-fast-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_engine_fast.json");
        // A 0.01 floor always holds when the gate runs; on a single-core
        // host the gate is skipped with a logged reason instead. Either
        // way the run must succeed and the report must carry the fast
        // column.
        let out = run(&args(&[
            "bench",
            "--sizes",
            "200",
            "--rounds",
            "30",
            "--precision",
            "fast",
            "--min-speedup",
            "0.01",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            out.contains("worst fast speedup") || out.contains("skipped: host_parallelism"),
            "{out}"
        );
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fast_speedup\":"), "{json}");
        assert!(json.contains("\"fast_within_eps\": true"), "{json}");

        let err = run(&args(&["bench", "--precision", "sloppy"])).unwrap_err();
        assert!(err.0.contains("--precision"), "{err}");
        assert!(err.0.contains("sloppy"), "{err}");
        assert!(err.0.contains("expected `reference` or `fast`"), "{err}");
    }

    #[test]
    fn simulate_accepts_the_fast_precision_tier() {
        let out = run(&args(&[
            "simulate",
            "--servers",
            "12",
            "--seconds",
            "6",
            "--precision",
            "fast",
        ]))
        .unwrap();
        assert!(out.contains("budget respected: true"), "{out}");
        assert!(run(&args(&["simulate", "--precision", "quick"])).is_err());
    }

    #[test]
    fn faults_report_is_byte_identical_across_reruns() {
        let dir = std::env::temp_dir().join("dpc-cli-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |name: &str| {
            let path = dir.join(name);
            let out = run(&args(&[
                "faults",
                "--servers",
                "20",
                "--rounds",
                "900",
                "--seed",
                "7",
                "--drops",
                "0.1",
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("report written"), "{out}");
            assert!(out.contains("re-absorbed"), "{out}");
            std::fs::read(path).unwrap()
        };
        let first = run_once("a.json");
        let second = run_once("b.json");
        assert_eq!(first, second, "fault report not byte-identical");
        let json = String::from_utf8(first).unwrap();
        assert!(json.contains("\"bench\": \"fault_resilience\""), "{json}");
        assert!(json.contains("\"all_recovered\": true"), "{json}");
        assert!(run(&args(&["faults", "--servers", "2"])).is_err());
        assert!(run(&args(&["faults", "--drops", "1.5"])).is_err());
    }

    #[test]
    fn replay_report_is_byte_identical_and_errors_name_the_file() {
        let dir = std::env::temp_dir().join("dpc-cli-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = dir.join("ramp.txt");
        std::fs::write(
            &scenario,
            "servers 8\nseed 3\nbudget 1400\n\
             at 1 budget 1386\nat 2 vm-arrive node 4 share 0.5 mem 0.3\n\
             at 3 vm-depart node 4\n",
        )
        .unwrap();
        let run_once = |name: &str| {
            let path = dir.join(name);
            let out = run(&args(&[
                "replay",
                "--scenario",
                scenario.to_str().unwrap(),
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("report written"), "{out}");
            assert!(out.contains("budget 1386.0"), "{out}");
            std::fs::read(path).unwrap()
        };
        let first = run_once("a.json");
        let second = run_once("b.json");
        assert_eq!(first, second, "replay report not byte-identical");
        let json = String::from_utf8(first).unwrap();
        assert!(json.contains("\"report\": \"replay\""), "{json}");
        assert!(json.contains("\"all_settled\": true"), "{json}");

        // Error paths: missing inputs and malformed scenarios name the
        // offending file (and line) instead of panicking.
        assert!(run(&args(&["replay"])).is_err());
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "servers 8\nbudget 1400\nat 1 phase node 99 mem 0.5\n").unwrap();
        let err = run(&args(&["replay", "--scenario", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("bad.txt"), "{err}");
        assert!(err.0.contains("unknown node 99"), "{err}");
        std::fs::write(
            &bad,
            "servers 8\nbudget 1400\nat 2 budget 90\nat 1 budget 95\n",
        )
        .unwrap();
        let err = run(&args(&["replay", "--scenario", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("line 4"), "{err}");
        let err = run(&args(&[
            "replay",
            "--scenario",
            scenario.to_str().unwrap(),
            "--cold",
            "maybe",
        ]))
        .unwrap_err();
        assert!(err.0.contains("--cold"), "{err}");
        assert!(run(&args(&["replay", "--bench", "--sizes", "4"])).is_err());
    }

    #[test]
    fn hier_solves_a_tree_and_writes_domain_records() {
        let dir = std::env::temp_dir().join("dpc-cli-hier-test");
        std::fs::create_dir_all(&dir).unwrap();
        let domains = dir.join("domains.jsonl");
        let out = run(&args(&[
            "hier",
            "--servers",
            "48",
            "--fanout",
            "4",
            "--depth",
            "1",
            "--tenants",
            "2",
            "--domains",
            domains.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("largest ring 12 servers"), "{out}");
        assert!(out.contains("tenant  tenant0"), "{out}");
        let jsonl = std::fs::read_to_string(&domains).unwrap();
        assert_eq!(jsonl.lines().count(), 5, "{jsonl}");
        assert!(jsonl.contains("\"path\":\"dc/dc.0\""), "{jsonl}");

        assert!(run(&args(&["hier", "--servers", "1"])).is_err());
        assert!(run(&args(&["hier", "--fanout", "1"])).is_err());
        assert!(run(&args(&["hier", "--leaf", "magic"])).is_err());
        assert!(run(&args(&["hier", "--bench", "--big", "5"])).is_err());
    }

    #[test]
    fn hier_bench_report_is_byte_identical_across_reruns() {
        let dir = std::env::temp_dir().join("dpc-cli-hier-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |name: &str| {
            let path = dir.join(name);
            let out = run(&args(&[
                "hier",
                "--bench",
                path.to_str().unwrap(),
                "--servers",
                "64",
                "--fanouts",
                "2,4",
                "--depths",
                "1",
                "--tenants",
                "2",
            ]))
            .unwrap();
            assert!(out.contains("report written"), "{out}");
            std::fs::read(path).unwrap()
        };
        let first = run_once("a.json");
        let second = run_once("b.json");
        assert_eq!(first, second, "hier report not byte-identical");
        let json = String::from_utf8(first).unwrap();
        assert!(json.contains("\"bench\": \"hierarchy\""), "{json}");
        assert!(json.contains("\"gates_pass\": true"), "{json}");
    }

    #[test]
    fn trace_is_byte_reproducible_and_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("dpc-cli-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let run_once = |name: &str| {
            // The nested path exercises write_output's directory creation:
            // the parent does not exist before the command runs.
            let path = dir.join(name).join("deep").join("trace.jsonl");
            let out = run(&args(&[
                "trace",
                "--servers",
                "24",
                "--rounds",
                "80",
                "--seed",
                "5",
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("trace written"), "{out}");
            assert!(out.contains("80 rounds recorded"), "{out}");
            std::fs::read(path).unwrap()
        };
        let first = run_once("a");
        let second = run_once("b");
        assert_eq!(first, second, "trace not byte-identical across reruns");
        let jsonl = String::from_utf8(first).unwrap();
        assert!(jsonl.contains("\"type\":\"round\""), "{jsonl}");
        assert!(jsonl.contains("\"sum_e_w\":"), "{jsonl}");
    }

    #[test]
    fn trace_covers_every_solver_and_format() {
        let dir = std::env::temp_dir().join("dpc-cli-trace-solvers");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("async.jsonl");
        let out = run(&args(&[
            "trace",
            "--solver",
            "async",
            "--servers",
            "20",
            "--rounds",
            "300",
            "--drop",
            "0.05",
            "--crash-round",
            "100",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("async trace"), "{out}");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.contains("\"type\":\"fault\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"crash\""), "{jsonl}");

        let path = dir.join("pd.csv");
        let out = run(&args(&[
            "trace",
            "--solver",
            "primal-dual",
            "--servers",
            "16",
            "--format",
            "csv",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("primal-dual trace"), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("round,budget_w,"), "{csv}");

        let path = dir.join("snapshot.prom");
        run(&args(&[
            "trace",
            "--servers",
            "16",
            "--rounds",
            "40",
            "--format",
            "prom",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(prom.contains("dpc_rounds_total 40"), "{prom}");

        assert!(run(&args(&["trace", "--solver", "frobnicate"])).is_err());
        assert!(run(&args(&["trace", "--format", "xml"])).is_err());
        assert!(run(&args(&["trace", "--rounds", "0"])).is_err());
        assert!(run(&args(&["trace", "--threads", "0"])).is_err());
        assert!(run(&args(&["trace", "--drop", "1.5"])).is_err());
    }

    #[test]
    fn bench_and_faults_attach_the_recorder_via_trace_flag() {
        let dir = std::env::temp_dir().join("dpc-cli-trace-flag");
        let _ = std::fs::remove_dir_all(&dir);
        let out_path = dir.join("reports").join("round.json");
        let trace_path = dir.join("traces").join("round.jsonl");
        let out = run(&args(&[
            "bench",
            "--sizes",
            "120",
            "--threads",
            "2",
            "--rounds",
            "25",
            "--out",
            out_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("round trace"), "{out}");
        assert!(std::fs::read_to_string(&trace_path)
            .unwrap()
            .contains("\"type\":\"round\""));

        let trace_path = dir.join("traces").join("faults.jsonl");
        let out = run(&args(&[
            "faults",
            "--servers",
            "20",
            "--rounds",
            "900",
            "--seed",
            "7",
            "--drops",
            "0.05",
            "--out",
            dir.join("reports").join("faults.json").to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("crash+restart trace"), "{out}");
        let jsonl = std::fs::read_to_string(&trace_path).unwrap();
        assert!(jsonl.contains("\"kind\":\"crash\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"restart\""), "{jsonl}");
    }

    #[test]
    fn cluster_inproc_deploys_and_reports_quorum() {
        let out = run(&args(&["cluster", "--servers", "6", "--seed", "1"])).unwrap();
        assert!(out.contains("6 nodes on inproc transport"), "{out}");
        assert!(out.contains("convergence quorum"), "{out}");
        assert!(out.contains("respected"), "{out}");
        assert!(run(&args(&["cluster", "--servers", "2"])).is_err());
        assert!(run(&args(&["cluster", "--transport", "carrier-pigeon"])).is_err());
        assert!(run(&args(&["cluster", "--tol", "0"])).is_err());
    }

    #[test]
    fn cluster_tcp_matches_inproc_allocation() {
        let inproc = run(&args(&["cluster", "--servers", "5", "--seed", "3"])).unwrap();
        let tcp = run(&args(&[
            "cluster",
            "--servers",
            "5",
            "--seed",
            "3",
            "--transport",
            "tcp",
        ]))
        .unwrap();
        // The per-node table is identical across transports; only the
        // header line naming the transport differs.
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("node"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&inproc), table(&tcp), "\n{inproc}\nvs\n{tcp}");
    }

    #[test]
    fn cluster_bench_report_is_reproducible_modulo_timing() {
        let dir = std::env::temp_dir().join("dpc-cli-runtime-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |name: &str| {
            let path = dir.join(name);
            let out = run(&args(&[
                "cluster",
                "--bench",
                path.to_str().unwrap(),
                "--sizes",
                "6",
                "--seed",
                "7",
                "--scale",
                "off",
            ]))
            .unwrap();
            assert!(out.contains("report written"), "{out}");
            std::fs::read_to_string(path).unwrap()
        };
        let deterministic = |json: &str| {
            json.lines()
                .filter(|l| !l.contains("per_sec") && !l.contains("secs"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let first = run_once("a.json");
        let second = run_once("b.json");
        assert_eq!(
            deterministic(&first),
            deterministic(&second),
            "runtime bench counters not byte-identical"
        );
        assert!(first.contains("\"bench\": \"runtime\""), "{first}");
        assert!(first.contains("\"transport\": \"inproc\""), "{first}");
        assert!(first.contains("\"transport\": \"tcp\""), "{first}");
        assert!(first.contains("\"all_converged\": true"), "{first}");
        assert!(run(&args(&["cluster", "--bench", "x.json", "--sizes", "0"])).is_err());
    }

    #[test]
    fn bare_bench_flag_gets_the_conventional_path() {
        let normalized =
            normalize_bench_arg(&args(&["--bench", "--sizes", "8"]), "BENCH_runtime.json");
        assert_eq!(
            normalized,
            args(&["--bench", "BENCH_runtime.json", "--sizes", "8"])
        );
        let normalized =
            normalize_bench_arg(&args(&["--sizes", "8", "--bench"]), "BENCH_runtime.json");
        assert_eq!(
            normalized,
            args(&["--sizes", "8", "--bench", "BENCH_runtime.json"])
        );
        let untouched =
            normalize_bench_arg(&args(&["--bench", "custom.json"]), "BENCH_runtime.json");
        assert_eq!(untouched, args(&["--bench", "custom.json"]));
    }

    #[test]
    fn node_processes_form_a_tcp_cluster() {
        // Four `dpc node` invocations — the per-process deployment path —
        // wired over pre-assigned loopback ports on a 4-ring. Each node
        // dials its higher-id neighbors and listens for the lower ones.
        let ports: Vec<u16> = (0..4)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().port()
            })
            .collect();
        let peer = |j: usize| format!("{j}=127.0.0.1:{}", ports[j]);
        let peers_for = |i: usize| -> String {
            // Ring neighbors of i with a higher id.
            [(i + 1) % 4, (i + 3) % 4]
                .into_iter()
                .filter(|&j| j > i)
                .map(peer)
                .collect::<Vec<_>>()
                .join(",")
        };
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let listen = format!("127.0.0.1:{}", ports[i]);
                let peers = peers_for(i);
                std::thread::spawn(move || {
                    let mut a = vec![
                        "node".to_string(),
                        "--id".to_string(),
                        i.to_string(),
                        "--servers".to_string(),
                        "4".to_string(),
                        "--seed".to_string(),
                        "7".to_string(),
                        "--listen".to_string(),
                        listen,
                    ];
                    if !peers.is_empty() {
                        a.push("--peers".to_string());
                        a.push(peers);
                    }
                    run(&a)
                })
            })
            .collect();
        let outputs: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        for (i, out) in outputs.iter().enumerate() {
            assert!(out.contains(&format!("node {i}:")), "{out}");
            assert!(out.contains("convergence quorum"), "{out}");
        }
    }

    #[test]
    fn node_rejects_bad_launch_configs() {
        let err = run(&args(&["node", "--servers", "4"])).unwrap_err();
        assert!(err.0.contains("--id is required"), "{err}");
        let err = run(&args(&["node", "--id", "9", "--servers", "4"])).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
        let err = run(&args(&[
            "node",
            "--id",
            "0",
            "--servers",
            "4",
            "--peers",
            "oops",
        ]))
        .unwrap_err();
        assert!(err.0.contains("expected id=ip:port"), "{err}");
        // Node 0 on a 4-ring has higher neighbors 1 and 3; giving it no
        // dial addresses is a typed runtime error naming the peer.
        let err = run(&args(&["node", "--id", "0", "--servers", "4"])).unwrap_err();
        assert!(err.0.contains("runtime:"), "{err}");
        assert!(err.0.contains("no dial address"), "{err}");
    }

    #[test]
    fn split_and_plan_run() {
        let out = run(&args(&["split", "--total-mw", "0.6"])).unwrap();
        assert!(out.contains("cooling share"));
        let out = run(&args(&[
            "plan",
            "--utilization",
            "0.5",
            "--iterations",
            "2000",
        ]))
        .unwrap();
        assert!(out.contains("local search"));
        assert!(run(&args(&["split", "--total-mw", "99"])).is_err());
    }
}
