//! # dpc — Fast Decentralized Power Capping for Server Clusters
//!
//! A full reproduction of the decentralized power-budgeting system of
//! Azimi, Badiei, Zhan, Li and Reda (HPCA 2017), as presented in Chapter 4
//! of Zhan's dissertation, including the substrates it runs on and the
//! baselines it is compared against:
//!
//! * [`models`] — workloads, throughput curves, DVFS/power model, the
//!   capping feedback controller, and cluster metrics;
//! * [`topology`] — communication graphs (ring, star, chords, random);
//! * [`net`] — the communication-time model behind the scalability study;
//! * [`alg`] — the solvers: **DiBA** (the paper's contribution),
//!   primal-dual decomposition, the exact centralized oracle, uniform and
//!   greedy baselines, the Chapter 3 knapsack and throughput predictors;
//! * [`thermal`] — heat recirculation, CRAC efficiency and the
//!   self-consistent computing/cooling split;
//! * [`sim`] — the dynamic cluster simulator (budget schedules, churn,
//!   step responses);
//! * [`agents`] — the thread-per-node message-passing prototype;
//! * [`runtime`] — the deployable node runtime: DiBA agents behind a
//!   pluggable transport (in-process channels or TCP sockets) speaking a
//!   versioned binary wire protocol;
//! * [`firmware`] — FXplore soft-heterogeneity extension (Ch. 6).
//!
//! # Quickstart
//!
//! ```
//! use dpc::alg::{centralized, diba::{DibaConfig, DibaRun}};
//! use dpc::alg::problem::PowerBudgetProblem;
//! use dpc::models::{units::Watts, workload::ClusterBuilder};
//! use dpc::topology::Graph;
//!
//! # fn main() -> Result<(), dpc::alg::problem::AlgError> {
//! // 100 fully utilized servers, heterogeneous HPC workloads, 17 kW cap.
//! let cluster = ClusterBuilder::new(100).seed(1).build();
//! let problem = PowerBudgetProblem::new(cluster.utilities(), Watts(17_000.0))?;
//!
//! // The centralized optimum…
//! let optimal = problem.total_utility(&centralized::solve(&problem).allocation);
//!
//! // …matched by fully decentralized neighbor gossip on a ring.
//! let mut diba = DibaRun::new(problem, Graph::ring(100), DibaConfig::default())?;
//! diba.run_until_within(optimal, 0.01, 10_000).expect("converges");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use dpc_agents as agents;
pub use dpc_alg as alg;
pub use dpc_firmware as firmware;
pub use dpc_models as models;
pub use dpc_net as net;
pub use dpc_runtime as runtime;
pub use dpc_sim as sim;
pub use dpc_thermal as thermal;
pub use dpc_topology as topology;
