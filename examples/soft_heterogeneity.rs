//! Soft heterogeneity end to end: FXplore tunes the firmware per workload
//! class, which *widens* the throughput-curve diversity that the
//! decentralized power budgeter then exploits — the two dissertation
//! threads composed.
//!
//! ```text
//! cargo run --release --example soft_heterogeneity
//! ```

use dpc::alg::centralized;
use dpc::alg::diba::{DibaConfig, DibaRun};
use dpc::alg::problem::PowerBudgetProblem;
use dpc::firmware::config::FirmwareConfig;
use dpc::firmware::explore::Objective;
use dpc::firmware::response::ResponseModel;
use dpc::firmware::subcluster::fxplore_sc;
use dpc::models::benchmark::{WorkloadSpec, HPC_BENCHMARKS};
use dpc::models::units::Watts;
use dpc::models::workload::ClusterBuilder;
use dpc::topology::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1 — FXplore: four firmware sub-clusters over the workload
    // catalog (offline, 16 reboots per representative).
    let mut rng = StdRng::seed_from_u64(7);
    let specs: Vec<&WorkloadSpec> = HPC_BENCHMARKS.iter().collect();
    let (clustering, configs) = fxplore_sc(&specs, 4, Objective::Runtime, 0.01, &mut rng);
    println!("firmware sub-clusters:");
    for (c, (cfg, _)) in configs.iter().enumerate() {
        let members: Vec<&str> = clustering
            .members(c)
            .into_iter()
            .map(|i| specs[i].name)
            .collect();
        println!("  cluster {c}: [{cfg}]  <- {}", members.join(", "));
    }

    // Step 2 — the tuned cluster: each server's throughput curve is scaled
    // by its workload's firmware speedup.
    let n = 400;
    let budget = Watts(166.0 * n as f64);
    let cluster = ClusterBuilder::new(n).seed(3).build();
    let baseline = PowerBudgetProblem::new(cluster.utilities(), budget)?;
    let tuned_utilities: Vec<_> = cluster
        .workloads()
        .iter()
        .map(|w| {
            let model = ResponseModel::for_spec(w.benchmark.spec());
            let cfg = configs[clustering.assignments()[w.benchmark as usize]].0;
            let speedup = model.runtime(FirmwareConfig::all_enabled()) / model.runtime(cfg);
            w.learned.scaled(speedup)
        })
        .collect();
    let tuned = PowerBudgetProblem::new(tuned_utilities, budget)?;

    // Step 3 — decentralized budgeting on both clusters.
    let report = |name: &str, p: &PowerBudgetProblem| -> Result<f64, Box<dyn std::error::Error>> {
        let opt = p.total_utility(&centralized::solve(p).allocation);
        let mut diba = DibaRun::new(p.clone(), Graph::ring(n), DibaConfig::default())?;
        diba.run_until_within(opt, 0.01, 30_000)
            .expect("DiBA converges on a ring");
        println!(
            "{name}: total throughput {:.1} (DiBA, {:.2} kW budget)",
            diba.total_utility(),
            budget.kilowatts()
        );
        Ok(diba.total_utility())
    };
    println!();
    let before = report("stock firmware   ", &baseline)?;
    let after = report("FXplore firmware ", &tuned)?;
    println!(
        "\nsoft heterogeneity buys {:.1}% more budgeted throughput on top of\n\
         the allocator's own gains — without buying a single new server.",
        (after / before - 1.0) * 100.0
    );
    Ok(())
}
