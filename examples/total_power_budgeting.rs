//! Total power budgeting: the Chapter 3 pipeline end to end.
//!
//! A facility has one number — the total budget at the meter. This example
//! splits it into computing and cooling power self-consistently
//! (Algorithm 1), then allocates the computing share across 3200 servers
//! with the multiple-choice knapsack budgeter driven by the runtime
//! throughput predictor, and compares against uniform allocation.
//!
//! ```text
//! cargo run --release --example total_power_budgeting
//! ```

use dpc::alg::knapsack::{self, chapter3_levels};
use dpc::alg::predictor::{PredictorKind, ThroughputPredictor};
use dpc::alg::{baselines, problem::PowerBudgetProblem};
use dpc::models::metrics::MetricSummary;
use dpc::models::units::Watts;
use dpc::thermal::partition::{self_consistent_partition, uniform_rack_map};
use dpc::thermal::ThermalModel;
use dpc_bench::ch3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total = Watts::from_megawatts(0.66);

    // 1. Split the meter budget into computing + cooling so the CRACs can
    //    extract exactly the heat the servers produce.
    let model = ThermalModel::paper_cluster();
    let map = uniform_rack_map(model.racks());
    let split = self_consistent_partition(total, &model, &map, Watts(50.0), 500)?;
    println!(
        "total {:.2} MW -> computing {:.3} MW + cooling {:.3} MW \
         (supply temperature {:.1})",
        total.megawatts(),
        split.computing.megawatts(),
        split.cooling.megawatts(),
        split.t_sup,
    );

    // 2. Budget the computing share across the servers. The budgeter only
    //    sees each server's current operating point; the trained predictor
    //    (Eq. 3.7/3.8) extrapolates every candidate cap.
    let n = 3200;
    let (truths, observations) = ch3::ch3_population(n, ch3::WithinServer::Homogeneous, 5);
    let train = ch3::ch3_records(1, 4);
    let predictor = ThroughputPredictor::train(PredictorKind::QuadraticLlcTp, &train)?;

    let levels = chapter3_levels();
    let top = *levels.last().expect("non-empty ladder");
    let values: Vec<Vec<f64>> = observations
        .iter()
        .map(|obs| {
            let peak = predictor.predict(obs, top).max(1e-9);
            levels
                .iter()
                .map(|&l| (predictor.predict(obs, l) / peak).clamp(1e-6, 1.2))
                .collect()
        })
        .collect();
    let budget = split.computing;
    let proposed = knapsack::solve_with_values(&values, &levels, budget, Watts(1.0))?;

    // 3. Score against uniform on the *true* curves.
    let problem = PowerBudgetProblem::new(truths.clone(), budget)?;
    let uniform = baselines::uniform(&problem);
    let score = |alloc: &dpc::alg::problem::Allocation| {
        let anps: Vec<f64> = truths
            .iter()
            .zip(alloc.powers())
            .map(|(u, &p)| u.anp(u.clamp(p)))
            .collect();
        MetricSummary::from_anps(&anps)
    };
    let (mp, mu) = (score(&proposed.allocation), score(&uniform));
    println!("\n                      proposed   uniform");
    println!(
        "SNP (geometric)        {:.4}    {:.4}",
        mp.snp_geometric, mu.snp_geometric
    );
    println!(
        "slowdown norm          {:.4}    {:.4}",
        mp.slowdown, mu.slowdown
    );
    println!(
        "unfairness             {:.4}    {:.4}",
        mp.unfairness, mu.unfairness
    );
    println!(
        "\ncaps spread over {} ladder levels (uniform uses one level for all).",
        {
            let mut levels_used = proposed.chosen_levels.clone();
            levels_used.sort_unstable();
            levels_used.dedup();
            levels_used.len()
        }
    );
    Ok(())
}
