//! Online dynamics: replay a scenario timeline (budget moves, VM churn, a
//! maintenance drain) against a *warm-started* DiBA and compare the rounds
//! each event needs to re-converge with a cold restart on the identical
//! mutated instance.
//!
//! ```text
//! cargo run --release --example online_replay
//! ```
//!
//! The same scenario drives the CLI:
//!
//! ```text
//! cargo run --release -- replay --scenario examples/scenarios/ramp_8node.txt
//! ```

use dpc::sim::replay::{replay, ReplayConfig, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string("examples/scenarios/ramp_8node.txt")?;
    let scenario = Scenario::parse(&text)?;
    let outcome = replay(&scenario, &ReplayConfig::default())?;

    print!("{}", outcome.report.to_table());
    println!(
        "\nfinal power {:.1} W under budget {:.1} W; ledger drift {:.2e} W",
        outcome.run.total_power().0,
        outcome.run.problem().budget().0,
        outcome.run.invariant_drift(),
    );

    let (warm, cold): (Vec<_>, Vec<_>) = outcome
        .report
        .events
        .iter()
        .map(|e| (e.warm_rounds.unwrap_or(0), e.cold_rounds.unwrap_or(0)))
        .unzip();
    println!(
        "warm rounds total {} vs cold {} — state carried across events pays for itself",
        warm.iter().sum::<usize>(),
        cold.iter().sum::<usize>(),
    );
    Ok(())
}
