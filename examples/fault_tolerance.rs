//! Fault isolation: the motivation for decentralization (Section 4.2).
//!
//! Runs the *actual message-passing deployment* — one thread per server,
//! channels along a chorded ring — then silently crashes two nodes and a
//! shows the survivors keep enforcing the budget and re-optimizing. A
//! centralized controller would be a single point of failure; here there is
//! simply no single point to fail.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use dpc::agents::AgentCluster;
use dpc::alg::centralized;
use dpc::alg::diba::DibaConfig;
use dpc::alg::problem::PowerBudgetProblem;
use dpc::models::units::Watts;
use dpc::models::workload::ClusterBuilder;
use dpc::topology::Graph;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let budget = Watts(170.0 * n as f64);
    let cluster = ClusterBuilder::new(n).seed(11).build();
    let problem = PowerBudgetProblem::new(cluster.utilities(), budget)?;
    let optimal = problem.total_utility(&centralized::solve(&problem).allocation);

    // A ring hardened with chords so single failures cannot partition it.
    let graph = Graph::ring_with_chords(n, 8);
    println!(
        "deploying {n} agents on a chorded ring (avg degree {:.1}, budget {:.2} kW)\n",
        graph.average_degree(),
        budget.kilowatts()
    );
    let mut agents = AgentCluster::spawn(
        problem,
        graph,
        DibaConfig::default(),
        Duration::from_millis(250),
    )?;

    agents.run_rounds(2_000);
    println!(
        "converged: power {:.3} kW / budget {:.3} kW, utility {:.1}% of optimal",
        agents.total_power().kilowatts(),
        budget.kilowatts(),
        100.0 * agents.total_utility() / optimal,
    );

    for &victim in &[5usize, 21] {
        println!("\n*** node {victim} crashes silently ***");
        agents.fail_node(victim);
        agents.run_rounds(1_500);
        println!(
            "survivors: {} / {n}; power {:.3} kW (dead nodes frozen), \
             budget respected: {}",
            agents.alive_count(),
            agents.total_power().kilowatts(),
            agents.total_power() <= budget + Watts(1e-6),
        );
    }

    let reports = agents.shutdown();
    println!(
        "\nfinal per-node power spread: {:.1}–{:.1} W",
        reports.iter().map(|r| r.p).fold(f64::INFINITY, f64::min),
        reports
            .iter()
            .map(|r| r.p)
            .fold(f64::NEG_INFINITY, f64::max),
    );
    println!("no coordinator existed at any point during this run.");
    Ok(())
}
