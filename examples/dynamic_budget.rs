//! Demand response: the cluster's budget changes every minute (as a utility
//! operator's demand-response program would dictate) while DiBA re-allocates
//! on the fly — the scenario of the paper's Fig. 4.4.
//!
//! ```text
//! cargo run --release --example dynamic_budget
//! ```

use dpc::alg::diba::DibaConfig;
use dpc::alg::problem::PowerBudgetProblem;
use dpc::models::units::{Seconds, Watts};
use dpc::models::workload::ClusterBuilder;
use dpc::sim::budgeter::DibaBudgeter;
use dpc::sim::engine::{DynamicSim, SimConfig};
use dpc::sim::schedule::BudgetSchedule;
use dpc::topology::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let cluster = ClusterBuilder::new(n).seed(7).build();

    // A demand-response schedule: per-server budget changes every minute.
    let per_server = [180.0, 168.0, 188.0, 172.0, 190.0, 166.0];
    let schedule = BudgetSchedule::steps(
        per_server
            .iter()
            .enumerate()
            .map(|(m, &w)| (Seconds(60.0 * m as f64), Watts(w * n as f64)))
            .collect(),
    );

    let problem = PowerBudgetProblem::new(cluster.utilities(), schedule.budget_at(Seconds::ZERO))?;
    let budgeter = DibaBudgeter::new(problem, Graph::ring(n), DibaConfig::default())?;

    let config = SimConfig {
        duration: Seconds(60.0 * per_server.len() as f64),
        sample_interval: Seconds(5.0),
        rounds_per_sample: 400,
        churn_mean: None,
        phase_mean: None,
        record_allocations: false,
        threads: dpc::alg::exec::Threads::Auto,
        precision: dpc::alg::exec::Precision::Reference,
        faults: None,
        telemetry: dpc_alg::telemetry::TelemetryConfig::off(),
    };
    let mut sim = DynamicSim::new(cluster, budgeter, schedule, config);
    let series = sim.run()?;

    println!("   t (s)  budget (kW)  power (kW)     SNP  SNP/optimal");
    println!("------------------------------------------------------");
    for pt in series.points().iter().step_by(3) {
        println!(
            "{:>8.0}  {:>11.2}  {:>10.2}  {:.4}       {:.4}",
            pt.t.0,
            pt.budget.kilowatts(),
            pt.total_power.kilowatts(),
            pt.snp,
            pt.snp / pt.optimal_snp,
        );
    }
    println!(
        "\nbudget respected at every sample: {}",
        series.budget_respected(Watts(1e-6))
    );
    println!(
        "mean SNP/optimal over the run:   {:.4}",
        series.mean_optimality()
    );
    Ok(())
}
