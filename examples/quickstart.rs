//! Quickstart: allocate a power budget across a heterogeneous cluster with
//! every scheme the paper compares, and see who wins.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpc::alg::diba::{DibaConfig, DibaRun};
use dpc::alg::primal_dual::{self, PrimalDualConfig};
use dpc::alg::problem::PowerBudgetProblem;
use dpc::alg::{baselines, centralized};
use dpc::models::metrics::snp_arithmetic;
use dpc::models::units::Watts;
use dpc::models::workload::ClusterBuilder;
use dpc::topology::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cluster of 200 fully utilized servers running a uniform random mix
    // of the ten HPC benchmarks, with a tight budget of 168 W/server.
    let n = 200;
    let cluster = ClusterBuilder::new(n).seed(2024).build();
    let budget = Watts(168.0 * n as f64);
    let problem = PowerBudgetProblem::new(cluster.utilities(), budget)?;
    println!(
        "cluster: {n} servers, enforceable range {:.0}–{:.0} W each, budget {:.1} kW\n",
        problem.utilities()[0].p_min().0,
        problem.utilities()[0].p_max().0,
        budget.kilowatts(),
    );

    let snp = |alloc: &dpc::alg::problem::Allocation| snp_arithmetic(&problem.anps(alloc));

    // 1. Equal split — no workload awareness.
    let uniform = baselines::uniform(&problem);

    // 2. Prior-work greedy by current throughput per watt.
    let greedy = baselines::greedy_throughput_per_watt(&problem, Watts(1.0));

    // 3. The exact centralized optimum (needs a coordinator that sees all
    //    utility functions).
    let oracle = centralized::solve(&problem);
    let optimal_utility = problem.total_utility(&oracle.allocation);

    // 4. Primal-dual decomposition: distributed computation, centralized
    //    price coordination.
    let pd = primal_dual::solve(&problem, &PrimalDualConfig::default());

    // 5. DiBA: fully decentralized — servers gossip only with ring
    //    neighbors, no coordinator anywhere.
    let mut diba = DibaRun::new(problem.clone(), Graph::ring(n), DibaConfig::default())?;
    let rounds = diba
        .run_until_within(optimal_utility, 0.01, 20_000)
        .expect("DiBA converges on a connected graph");

    println!("scheme           SNP     total power");
    println!("------------------------------------");
    for (name, alloc) in [
        ("uniform", &uniform),
        ("greedy", &greedy),
        ("primal-dual", &pd.allocation),
        ("DiBA", &diba.allocation()),
        ("oracle", &oracle.allocation),
    ] {
        println!(
            "{name:<12}  {:.4}    {:>8.1} kW",
            snp(alloc),
            alloc.total().kilowatts()
        );
    }
    println!(
        "\nDiBA reached 99% of the centralized optimum in {rounds} gossip rounds\n\
         ({} iterations of primal-dual price updates were needed through a\n\
         coordinator for the same accuracy).",
        pd.iterations
    );
    Ok(())
}
